#!/usr/bin/env python3
"""Fig 1 and Fig 2, step by step.

Builds the full DNS hierarchy (root -> .net TLD -> the measurement
SLD's authoritative server), stands up one standard open resolver, and
traces a single probe through every hop: Q1 to the resolver, the
iterative walk (root referral, TLD referral, authoritative answer),
and R2 back to the prober — with the Q2/R1 capture at the
authoritative server, joined on the qname exactly as the paper does.

Usage::

    python examples/resolution_walkthrough.py
"""

from repro.dnslib.message import make_query
from repro.dnslib.wire import decode_message, encode_message
from repro.dnslib.zone import Zone
from repro.dnssrv.hierarchy import build_hierarchy
from repro.dnssrv.recursive import RecursiveResolver
from repro.netsim.network import Network
from repro.netsim.packet import Datagram
from repro.netsim.pcap import PacketTap
from repro.prober.capture import join_flows, R2Record

PROBER_IP = "132.170.3.14"
RESOLVER_IP = "93.184.10.77"
QNAME = "or000.0000042.ucfsealresearch.net"


def main() -> None:
    network = Network(seed=0)
    hierarchy = build_hierarchy(network)
    zone = Zone(hierarchy.sld)
    zone.add_a(QNAME, hierarchy.auth.ip)
    hierarchy.auth.load_zone(zone)

    resolver = RecursiveResolver(
        RESOLVER_IP, hierarchy.root_servers, record_traces=True
    )
    resolver.attach(network)

    prober_tap = PacketTap("prober")
    network.attach_tap(PROBER_IP, prober_tap)
    auth_tap = PacketTap("tcpdump@auth")
    network.attach_tap(hierarchy.auth.ip, auth_tap)

    responses = []
    network.bind(PROBER_IP, 31337, lambda dg, net: responses.append(dg))

    print(f"(1) Prober {PROBER_IP} sends Q1 for {QNAME}")
    query = make_query(QNAME, msg_id=4242)
    network.send(
        Datagram(PROBER_IP, 31337, RESOLVER_IP, 53, encode_message(query))
    )
    network.run()

    (trace,) = resolver.traces
    step = 2
    for server_ip, disposition in trace.steps:
        role = {
            hierarchy.root.ip: "root server",
            hierarchy.tld.ip: ".net TLD server",
            hierarchy.auth.ip: "authoritative server",
        }[server_ip]
        print(f"({step}) resolver -> {role} ({server_ip}): {disposition}")
        step += 1

    (r2,) = responses
    decoded = decode_message(r2.payload)
    print(
        f"({step}) R2 back to prober: id={decoded.header.msg_id} "
        f"RA={int(decoded.header.flags.ra)} AA={int(decoded.header.flags.aa)} "
        f"answer={decoded.first_a_record().data.address}"
    )

    print()
    print("Packet captures (Fig 2):")
    print(f"  prober tap: {len(prober_tap)} packets "
          f"(Q1 out, R2 in: {len(prober_tap.outbound())}/{len(prober_tap.inbound())})")
    print(f"  auth tap:   {len(auth_tap)} packets "
          f"(Q2 in, R1 out: {len(auth_tap.inbound())}/{len(auth_tap.outbound())})")

    flow_set = join_flows(
        [R2Record(0.0, RESOLVER_IP, r2.payload)], hierarchy.auth
    )
    flow = flow_set.flows[QNAME]
    print(
        f"  joined flow on qname: Q2 count={flow.q2_count}, "
        f"R1 count={flow.r1_count}, R2 present={flow.r2 is not None}"
    )
    print()
    print("Auth server query log (the paper's tcpdump):")
    for entry in hierarchy.auth.query_log:
        print(
            f"  t={entry.timestamp:.3f}s  {entry.src_ip} asked {entry.qname} "
            f"-> rcode {entry.rcode}"
        )


if __name__ == "__main__":
    main()
