#!/usr/bin/env python3
"""Hunting manipulating resolvers (section IV-C).

Runs a finer-grained 2018 campaign, isolates the incorrect answers,
validates the destinations against the Cymon substrate, and prints the
malicious-resolver picture: Table VIII (top wrong destinations),
Table IX (category mix), Table X (flag misuse on malicious responses),
the country distribution, and a Fig 4-style report card for the
hottest malicious destination.

Usage::

    python examples/manipulation_hunt.py [scale]
"""

import sys

from repro.analysis.incorrect import incorrect_views
from repro.analysis.malicious import malicious_views
from repro.analysis.report import (
    render_country_distribution,
    render_malicious_categories,
    render_malicious_flags,
    render_top_destinations,
)
from repro.core import Campaign, CampaignConfig


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 1024
    print(f"Scanning at scale 1/{scale} (this is the finest default; "
          f"expect ~{26926 // scale} malicious responses)...")
    result = Campaign(
        CampaignConfig(year=2018, scale=scale, seed=7, time_compression=4.0)
    ).run()
    views = result.flow_set.views
    truth = result.hierarchy.auth.ip
    cymon = result.population.cymon

    wrong = incorrect_views(views, truth)
    bad = malicious_views(views, truth, cymon)
    print(
        f"Collected {len(views):,} responses; {len(wrong):,} carried wrong "
        f"answers; {len(bad):,} pointed at Cymon-reported destinations."
    )
    print()
    print(render_top_destinations(result.top_destinations))
    print()
    print(render_malicious_categories({2018: result.malicious_categories}))
    print()
    print(render_malicious_flags(result.malicious_flags))
    print()
    print(render_country_distribution(result.country_distribution))
    print()

    if bad:
        from collections import Counter

        hottest, count = Counter(
            view.first_answer()[1] for view in bad
        ).most_common(1)[0]
        print(
            f"Fig 4 equivalent - report card for the hottest malicious "
            f"destination ({count} R2 packets):"
        )
        print(cymon.render_report(hottest))
        print()
        print(
            "Cache poisoning is implausible here: every probe qname was "
            "freshly generated, so these answers cannot have come from a "
            "poisoned cache - the resolvers themselves are manipulating "
            "(section IV-C2, 'DNS Manipulation')."
        )


if __name__ == "__main__":
    main()
