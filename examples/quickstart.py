#!/usr/bin/env python3
"""Quickstart: run a scaled 2018 open-resolver measurement campaign.

Reproduces the paper's 2018 Internet-wide scan at 1/8192 scale — the
population of ~6.5M responding hosts becomes ~800, the 3.7B-address
walk becomes ~450k — and prints the full table report. Takes a few
seconds.

Usage::

    python examples/quickstart.py [scale] [seed]
"""

import sys

from repro.core import Campaign, CampaignConfig


def main() -> None:
    scale = int(sys.argv[1]) if len(sys.argv) > 1 else 8192
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    print(f"Running the 2018 campaign at scale 1/{scale} (seed {seed})...")
    campaign = Campaign(CampaignConfig(year=2018, scale=scale, seed=seed))
    result = campaign.run()
    print()
    print(result.report())
    print()
    print("Key findings vs the paper:")
    est = result.estimates
    print(
        f"  - Open resolvers (strictest criterion): "
        f"{est.ra_and_correct:,} sampled "
        f"=> ~{est.ra_and_correct * scale / 1e6:.2f}M full-scale "
        f"(paper: ~2.74M)"
    )
    print(
        f"  - Error rate among answers: {result.correctness.err:.2f}% "
        f"(paper: 3.879%)"
    )
    print(
        f"  - RA=0 answers wrong {result.ra_table.zero.err:.1f}% of the time "
        f"(paper: 94.2%); RA=1 answers wrong {result.ra_table.one.err:.1f}% "
        f"(paper: 1.6%)"
    )


if __name__ == "__main__":
    main()
