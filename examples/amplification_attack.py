#!/usr/bin/env python3
"""DNS amplification through open resolvers (section II-C).

Builds a record-rich zone, measures per-qtype amplification factors
with and without EDNS(0), then launches a spoofed-source 'ANY' attack
through a fleet of simulated open resolvers and reports what the
victim absorbs.

Usage::

    python examples/amplification_attack.py [resolver_count]
"""

import sys

from repro.amplification import (
    AmplificationAttack,
    build_rich_zone,
    measure_amplification,
    sweep_qtypes,
)
from repro.dnslib.constants import QueryType
from repro.dnssrv.auth import AuthoritativeServer
from repro.dnssrv.hierarchy import build_hierarchy
from repro.dnssrv.recursive import RecursiveResolver
from repro.netsim.network import Network

ORIGIN = "amp.example"


def main() -> None:
    resolver_count = int(sys.argv[1]) if len(sys.argv) > 1 else 50

    print("Per-qtype amplification factors (with EDNS 4096):")
    server = AuthoritativeServer("198.51.100.53")
    server.load_zone(build_rich_zone(ORIGIN))
    for measurement in sweep_qtypes(server, ORIGIN):
        name = QueryType(measurement.qtype).name
        print(
            f"  {name:>5}: query {measurement.query_bytes:>3} B -> "
            f"response {measurement.response_bytes:>5} B  "
            f"(factor {measurement.factor:5.1f}x)"
        )
    no_edns = measure_amplification(server, ORIGIN, QueryType.ANY, use_edns=False)
    print(
        f"  ANY without EDNS: capped at {no_edns.response_bytes} B "
        f"(factor {no_edns.factor:.1f}x, truncated={no_edns.truncated})"
    )

    print()
    print(f"Spoofed-source attack through {resolver_count} open resolvers:")
    network = Network(seed=3)
    hierarchy = build_hierarchy(network, sld=ORIGIN, auth_ip="198.51.100.53")
    hierarchy.auth.load_zone(build_rich_zone(ORIGIN))
    resolver_ips = []
    for index in range(resolver_count):
        ip = f"100.64.{index // 250}.{index % 250 + 1}"
        # (CGNAT space is reserved for probing, but these hosts are the
        # attacker's reflector list, not scan targets.)
        RecursiveResolver(ip, hierarchy.root_servers).attach(network)
        resolver_ips.append(ip)
    attack = AmplificationAttack(
        network,
        attacker_ip="6.6.6.6",
        victim_ip="203.0.113.9",
        resolver_ips=resolver_ips,
        qname=ORIGIN,
    )
    report = attack.launch(rounds=4)
    print(f"  queries sent:      {report.queries_sent:,}")
    print(f"  attacker spent:    {report.attacker_bytes:,} bytes")
    print(f"  victim received:   {report.victim_bytes:,} bytes "
          f"in {report.victim_packets:,} packets")
    print(f"  amplification:     {report.amplification_factor:.1f}x")


if __name__ == "__main__":
    main()
