"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs setuptools' bdist_wheel,
which is unavailable offline here; `python setup.py develop` provides an
equivalent editable install.
"""

from setuptools import setup

setup()
