"""Dataset persistence and offline analysis tests."""

import json

import pytest

from repro.core import Campaign, CampaignConfig
from repro.datasets import (
    analyze_dataset,
    compare_datasets,
    load_campaign,
    save_campaign,
)


@pytest.fixture(scope="module")
def result():
    return Campaign(CampaignConfig(year=2018, scale=16384, seed=5)).run()


@pytest.fixture(scope="module")
def saved(result, tmp_path_factory):
    directory = tmp_path_factory.mktemp("dataset") / "campaign-2018"
    save_campaign(result, directory)
    return directory


class TestSaveLoad:
    def test_artifacts_exist(self, saved):
        for name in ("metadata.json", "r2.pcap", "auth_log.jsonl",
                     "cymon.jsonl", "geo.jsonl", "whois.jsonl"):
            assert (saved / name).exists(), name

    def test_metadata(self, result, saved):
        metadata = json.loads((saved / "metadata.json").read_text())
        assert metadata["year"] == 2018
        assert metadata["scale"] == 16384
        assert metadata["r2_count"] == result.capture.r2_count
        assert metadata["truth_ip"] == result.hierarchy.auth.ip

    def test_r2_records_roundtrip(self, result, saved):
        dataset = load_campaign(saved)
        assert len(dataset.r2_records) == len(result.capture.r2_records)
        original = sorted(r.payload for r in result.capture.r2_records)
        loaded = sorted(r.payload for r in dataset.r2_records)
        assert original == loaded

    def test_query_log_roundtrip(self, result, saved):
        dataset = load_campaign(saved)
        assert len(dataset.query_log) == len(result.hierarchy.auth.query_log)
        assert dataset.query_log[0] == result.hierarchy.auth.query_log[0]

    def test_intel_roundtrip(self, result, saved):
        dataset = load_campaign(saved)
        assert len(dataset.cymon) == len(result.population.cymon)
        assert len(dataset.geo) == len(result.population.geo)
        assert len(dataset.whois) == len(result.population.whois)

    def test_bad_format_version_rejected(self, saved, tmp_path):
        import shutil

        bad = tmp_path / "bad"
        shutil.copytree(saved, bad)
        metadata = json.loads((bad / "metadata.json").read_text())
        metadata["format_version"] = 99
        (bad / "metadata.json").write_text(json.dumps(metadata))
        with pytest.raises(ValueError):
            load_campaign(bad)


class TestOfflineAnalysis:
    def test_tables_match_live_analysis(self, result, saved):
        """The offline pipeline reproduces the live tables bit for bit."""
        analysis = analyze_dataset(load_campaign(saved))
        assert analysis.correctness == result.correctness
        assert analysis.ra_table == result.ra_table
        assert analysis.aa_table == result.aa_table
        assert analysis.rcode_table == result.rcode_table
        assert analysis.estimates == result.estimates
        assert analysis.malicious_flags == result.malicious_flags
        assert analysis.country_distribution == result.country_distribution
        assert analysis.incorrect_forms == result.incorrect_forms
        assert analysis.malicious_categories == result.malicious_categories

    def test_probe_summary_counts(self, result, saved):
        analysis = analyze_dataset(load_campaign(saved))
        assert analysis.probe_summary.q1 == result.probe_summary.q1
        assert analysis.probe_summary.r2 == result.probe_summary.r2
        assert analysis.probe_summary.q2_r1 == result.probe_summary.q2_r1

    def test_compare_datasets(self, saved, tmp_path_factory):
        result_2013 = Campaign(
            CampaignConfig(year=2013, scale=16384, seed=5, time_compression=64.0)
        ).run()
        directory = tmp_path_factory.mktemp("dataset") / "campaign-2013"
        save_campaign(result_2013, directory)
        before = analyze_dataset(load_campaign(directory))
        after = analyze_dataset(load_campaign(saved))
        comparison = compare_datasets(before, after)
        assert comparison.open_resolvers_declined


class TestShardCheckpointDurability:
    """Crash-durability of the checkpoint store: atomic writes, fsync,
    quarantine of torn temp files."""

    FINGERPRINT = {"year": 2018, "scale": 4096, "seed": 3, "workers": 4}

    def _save(self, directory, index, outcome="outcome"):
        from repro.datasets.store import save_shard_checkpoint

        return save_shard_checkpoint(
            directory, self.FINGERPRINT, index, outcome
        )

    def _load(self, directory):
        from repro.datasets.store import load_shard_checkpoints

        return load_shard_checkpoints(directory, self.FINGERPRINT)

    def test_save_leaves_no_temp_files(self, tmp_path):
        self._save(tmp_path, 0)
        self._save(tmp_path, 1)
        assert list(tmp_path.glob("*.tmp")) == []
        assert sorted(self._load(tmp_path)) == [0, 1]

    def test_save_fsyncs_data_before_rename(self, tmp_path, monkeypatch):
        import os as real_os

        import repro.datasets.store as store

        calls = []
        original_fsync = real_os.fsync

        def recording_fsync(fd):
            calls.append(fd)
            return original_fsync(fd)

        monkeypatch.setattr(store.os, "fsync", recording_fsync)
        self._save(tmp_path, 0)
        # First save writes manifest and pickle: each fsyncs its data
        # file and the containing directory entry.
        assert len(calls) >= 4

    def test_crash_before_manifest_rename_leaves_no_torn_manifest(
        self, tmp_path, monkeypatch
    ):
        import repro.datasets.store as store

        def exploding_replace(src, dst):
            raise KeyboardInterrupt("crash between tmp-write and rename")

        monkeypatch.setattr(store.os, "replace", exploding_replace)
        with pytest.raises(KeyboardInterrupt):
            self._save(tmp_path, 0)
        # The real name never exists torn; only the tmp file does.
        assert not (tmp_path / "shards.json").exists()
        monkeypatch.undo()
        # A later (post-restart) load quarantines the leftover and
        # resumes to nothing rather than choking on torn JSON.
        assert self._load(tmp_path) == {}

    def test_load_quarantines_stray_tmp_files(self, tmp_path):
        self._save(tmp_path, 0)
        self._save(tmp_path, 1)
        torn = tmp_path / "shard_0002.pkl.tmp"
        torn.write_bytes(b"\x80\x05half-a-pickle")
        outcomes = self._load(tmp_path)
        assert sorted(outcomes) == [0, 1]
        assert not torn.exists()
        quarantined = tmp_path / "shard_0002.pkl.tmp.quarantined"
        assert quarantined.exists()
        # Quarantined leftovers stay quarantined on the next load.
        assert sorted(self._load(tmp_path)) == [0, 1]
        assert quarantined.exists()
