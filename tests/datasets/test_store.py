"""Dataset persistence and offline analysis tests."""

import json

import pytest

from repro.core import Campaign, CampaignConfig
from repro.datasets import (
    analyze_dataset,
    compare_datasets,
    load_campaign,
    save_campaign,
)


@pytest.fixture(scope="module")
def result():
    return Campaign(CampaignConfig(year=2018, scale=16384, seed=5)).run()


@pytest.fixture(scope="module")
def saved(result, tmp_path_factory):
    directory = tmp_path_factory.mktemp("dataset") / "campaign-2018"
    save_campaign(result, directory)
    return directory


class TestSaveLoad:
    def test_artifacts_exist(self, saved):
        for name in ("metadata.json", "r2.pcap", "auth_log.jsonl",
                     "cymon.jsonl", "geo.jsonl", "whois.jsonl"):
            assert (saved / name).exists(), name

    def test_metadata(self, result, saved):
        metadata = json.loads((saved / "metadata.json").read_text())
        assert metadata["year"] == 2018
        assert metadata["scale"] == 16384
        assert metadata["r2_count"] == result.capture.r2_count
        assert metadata["truth_ip"] == result.hierarchy.auth.ip

    def test_r2_records_roundtrip(self, result, saved):
        dataset = load_campaign(saved)
        assert len(dataset.r2_records) == len(result.capture.r2_records)
        original = sorted(r.payload for r in result.capture.r2_records)
        loaded = sorted(r.payload for r in dataset.r2_records)
        assert original == loaded

    def test_query_log_roundtrip(self, result, saved):
        dataset = load_campaign(saved)
        assert len(dataset.query_log) == len(result.hierarchy.auth.query_log)
        assert dataset.query_log[0] == result.hierarchy.auth.query_log[0]

    def test_intel_roundtrip(self, result, saved):
        dataset = load_campaign(saved)
        assert len(dataset.cymon) == len(result.population.cymon)
        assert len(dataset.geo) == len(result.population.geo)
        assert len(dataset.whois) == len(result.population.whois)

    def test_bad_format_version_rejected(self, saved, tmp_path):
        import shutil

        bad = tmp_path / "bad"
        shutil.copytree(saved, bad)
        metadata = json.loads((bad / "metadata.json").read_text())
        metadata["format_version"] = 99
        (bad / "metadata.json").write_text(json.dumps(metadata))
        with pytest.raises(ValueError):
            load_campaign(bad)


class TestOfflineAnalysis:
    def test_tables_match_live_analysis(self, result, saved):
        """The offline pipeline reproduces the live tables bit for bit."""
        analysis = analyze_dataset(load_campaign(saved))
        assert analysis.correctness == result.correctness
        assert analysis.ra_table == result.ra_table
        assert analysis.aa_table == result.aa_table
        assert analysis.rcode_table == result.rcode_table
        assert analysis.estimates == result.estimates
        assert analysis.malicious_flags == result.malicious_flags
        assert analysis.country_distribution == result.country_distribution
        assert analysis.incorrect_forms == result.incorrect_forms
        assert analysis.malicious_categories == result.malicious_categories

    def test_probe_summary_counts(self, result, saved):
        analysis = analyze_dataset(load_campaign(saved))
        assert analysis.probe_summary.q1 == result.probe_summary.q1
        assert analysis.probe_summary.r2 == result.probe_summary.r2
        assert analysis.probe_summary.q2_r1 == result.probe_summary.q2_r1

    def test_compare_datasets(self, saved, tmp_path_factory):
        result_2013 = Campaign(
            CampaignConfig(year=2013, scale=16384, seed=5, time_compression=64.0)
        ).run()
        directory = tmp_path_factory.mktemp("dataset") / "campaign-2013"
        save_campaign(result_2013, directory)
        before = analyze_dataset(load_campaign(directory))
        after = analyze_dataset(load_campaign(saved))
        comparison = compare_datasets(before, after)
        assert comparison.open_resolvers_declined
