"""Policy through the serving stack: sim≡socket parity and lifecycle.

Qname-triggered verdicts (block → NXDOMAIN, sinkhole → synthesized A,
zone routes, NXDOMAIN rewriting) depend only on the query, so the live
daemon's bytes must equal the simulator's for the same wire sequence —
the same differential the plain interop suite runs, now with a policy
engine in front. Client-address verdicts are asserted per backend (the
loopback client and the simulated client necessarily differ).

The lifecycle half pins the forwarder bugfix end to end: a daemon whose
upstream never answers drains within one eviction horizon instead of
hanging on the leaked outstanding table until the grace cuts it off.
"""

import json
import socket
import time

import pytest

from repro.dnslib.constants import Rcode
from repro.dnslib.fastwire import build_query_wire
from repro.dnslib.wire import decode_message
from repro.dnssrv.forwarder import _Outstanding
from repro.netsim.packet import Datagram
from repro.transport.serve import (
    DEFAULT_SLD,
    AUTH_IP,
    DnsService,
    ServeConfig,
    build_world,
)
from repro.transport.sim import SimTransport

SIM_CLIENT_IP = "8.8.4.100"
CLIENT_PORT = 5555

POLICY_FLAGS = dict(
    block=(f"blocked.{DEFAULT_SLD}",),
    sinkhole=(f"evil.{DEFAULT_SLD}",),
    zone_route=(f"routed.{DEFAULT_SLD}={AUTH_IP}",),
)


def policy_config(profile, port, **extra):
    return ServeConfig(profile=profile, port=port, **POLICY_FLAGS, **extra)


def policy_queries():
    names = [
        f"www.{DEFAULT_SLD}",         # allowed: the fixture answer
        f"x.blocked.{DEFAULT_SLD}",   # blocked qname: NXDOMAIN
        f"sub.evil.{DEFAULT_SLD}",    # sinkholed: synthesized A
        f"www.{DEFAULT_SLD}",         # allowed again (cache path)
    ]
    return [
        build_query_wire(name, msg_id=index)
        for index, name in enumerate(names, start=1)
    ]


def sim_answers(config, query_wires, client_ip=SIM_CLIENT_IP):
    transport = SimTransport()
    world = build_world(config, transport, infra_port=53)
    replies = []
    transport.bind(client_ip, CLIENT_PORT, lambda dg, net: replies.append(dg))
    endpoint = world.endpoint
    for wire in query_wires:
        transport.send(
            Datagram(client_ip, CLIENT_PORT, endpoint.ip, endpoint.port, wire)
        )
        transport.run()
    return [dg.payload for dg in replies], world


def socket_answers(config, query_wires, timeout=3.0):
    service = DnsService(config)
    endpoint = service.start()
    client = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    client.settimeout(timeout)
    client.bind(("127.0.0.1", 0))
    payloads = []
    try:
        for wire in query_wires:
            client.sendto(wire, (endpoint.ip, endpoint.port))
            payload, _ = client.recvfrom(65535)
            payloads.append(payload)
    finally:
        client.close()
        service.stop()
    return payloads, service


@pytest.mark.parametrize("profile", ["recursive", "forwarder", "transparent"])
class TestSimSocketPolicyDifferential:
    def test_policy_verdict_bytes_identical_across_backends(self, profile):
        wires = policy_queries()
        sim, _ = sim_answers(policy_config(profile, port=5300), wires)
        live, _ = socket_answers(policy_config(profile, port=0), wires)
        assert len(sim) == len(wires)
        assert live == sim

    def test_verdicts_decode_as_specified(self, profile):
        wires = policy_queries()
        live, _ = socket_answers(policy_config(profile, port=0), wires)
        allowed, blocked, sinkholed, again = map(decode_message, live)
        assert allowed.first_a_record().data.address == "203.0.113.80"
        assert blocked.rcode == Rcode.NXDOMAIN
        assert sinkholed.rcode == Rcode.NOERROR
        assert sinkholed.first_a_record().data.address == "203.0.113.253"
        assert again.first_a_record().data.address == "203.0.113.80"


class TestZoneRoute:
    def test_routed_zone_resolves_via_the_named_server(self):
        # The route sends routed.<sld> straight at the authoritative
        # server; the name exists there, so the answer must come back
        # identically on both backends without touching root or TLD.
        config = policy_config("recursive", port=5300)
        wires = [build_query_wire(f"www.{DEFAULT_SLD}", msg_id=9)]
        sim, world = sim_answers(config, wires)
        assert world.root.queries_served > 0  # unrouted names still walk

        routed_wires = [
            build_query_wire(f"routed.{DEFAULT_SLD}", msg_id=10)
        ]
        sim_routed, world_routed = sim_answers(config, routed_wires)
        assert world_routed.root.queries_served == 0
        assert world_routed.tld.queries_served == 0
        (payload,) = sim_routed
        # routed.<sld> is not in the fixture zone: the auth server says
        # NXDOMAIN — but the decision rode the route, provably.
        assert decode_message(payload).rcode == Rcode.NXDOMAIN
        assert world_routed.policy.stats.routed == 1


class TestClientBlocks:
    def test_simulated_client_refused_by_cidr(self):
        config = ServeConfig(
            profile="recursive", port=5300, block=("8.8.4.0/24",)
        )
        wires = [build_query_wire(f"www.{DEFAULT_SLD}", msg_id=1)]
        payloads, world = sim_answers(config, wires)
        assert decode_message(payloads[0]).rcode == Rcode.REFUSED
        assert world.policy.stats.refused == 1

    def test_loopback_client_refused_on_the_live_daemon(self):
        config = ServeConfig(
            profile="recursive", port=0, block=("127.0.0.0/8",)
        )
        wires = [build_query_wire(f"www.{DEFAULT_SLD}", msg_id=1)]
        payloads, service = socket_answers(config, wires)
        assert decode_message(payloads[0]).rcode == Rcode.REFUSED
        counters = service.hub.registry.snapshot().counters
        assert counters["policy.refused"] == 1


class TestPolicyFileRewrite:
    def test_nxdomain_rewrite_identical_across_backends(self, tmp_path):
        policy_path = tmp_path / "policy.json"
        policy_path.write_text(
            json.dumps({"rewrite_nxdomain_to": "198.51.100.99"})
        )
        config = ServeConfig(
            profile="recursive", port=5300, policy_file=str(policy_path)
        )
        wires = [build_query_wire(f"no-such.{DEFAULT_SLD}", msg_id=4)]
        sim, _ = sim_answers(config, wires)
        live, _ = socket_answers(
            ServeConfig(
                profile="recursive", port=0, policy_file=str(policy_path)
            ),
            wires,
        )
        assert live == sim
        rewritten = decode_message(live[0])
        assert rewritten.rcode == Rcode.NOERROR
        assert rewritten.first_a_record().data.address == "198.51.100.99"


class TestPolicyTelemetry:
    def test_counters_fold_per_decision(self):
        wires = policy_queries()
        _, service = socket_answers(
            policy_config("recursive", port=0), wires
        )
        counters = service.hub.registry.snapshot().counters
        assert counters["policy.evaluated"] == 4
        assert counters["policy.allowed"] == 2
        assert counters["policy.nxdomain"] == 1
        assert counters["policy.sinkholed"] == 1
        assert (
            counters[f"policy.decision.block-qname:blocked.{DEFAULT_SLD}"
                     ".nxdomain"] == 1
        )
        assert (
            counters[f"policy.decision.sinkhole:evil.{DEFAULT_SLD}"
                     ".sinkhole"] == 1
        )

    def test_no_policy_flags_fold_no_policy_counters(self):
        wires = [build_query_wire(f"www.{DEFAULT_SLD}", msg_id=1)]
        _, service = socket_answers(
            ServeConfig(profile="recursive", port=0), wires
        )
        counters = service.hub.registry.snapshot().counters
        assert not any(name.startswith("policy.") for name in counters)


class TestBlackholedForwarderDrain:
    """The daemon-level half of the eviction bugfix: stale relays must
    not hold the drain gate for the whole grace period."""

    def test_drain_completes_within_one_eviction_horizon(self):
        config = ServeConfig(
            profile="forwarder", port=0,
            eviction_horizon=0.4, drain_grace=10.0,
        )
        service = DnsService(config)
        service.start()
        front = service.world.front
        # Model a blackholed upstream: entries relayed and never
        # answered. Injected directly — the daemon is idle, and this is
        # exactly the state a dead upstream leaves behind.
        now = service.world.transport.now
        for msg_id in (101, 102, 103):
            front._outstanding[msg_id] = _Outstanding(
                Datagram("127.0.0.1", 5555, "127.0.0.1", 53, b""),
                now, front.upstream_ip,
            )
        assert service.world.pending() == 3
        started = time.monotonic()
        service.stop()
        elapsed = time.monotonic() - started
        assert service.drained
        assert front.evicted == 3
        assert front.pending_count == 0
        # One horizon (0.4s) plus poll/join slack — nowhere near the
        # 10s grace the leak would have burned.
        assert elapsed < 5.0
        gauge = service.hub.registry.snapshot().gauges[
            "serve.drain_pending_left"
        ]
        assert gauge["last"] == 0.0

    def test_eviction_horizon_validated(self):
        with pytest.raises(ValueError, match="eviction_horizon"):
            ServeConfig(eviction_horizon=0.0)
