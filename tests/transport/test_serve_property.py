"""Property tests: the serving stack never emits bytes the strict
parser rejects, on any backend, for any query in the accepted grammar.

The daemon's wire contract is one invariant stated three ways:

- every payload the authoritative fast path (template codec) renders is
  byte-equal to the slow ``encode_message`` path;
- every payload any profile emits strict-parses with
  :func:`repro.dnslib.wire.decode_message` and re-encodes to the same
  bytes (a true round-trip, not mere acceptance);
- the same holds over a real socket, where the bytes crossed an OS
  boundary first.
"""

import socket

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dnslib.constants import QueryType
from repro.dnslib.fastwire import build_query_wire
from repro.dnslib.wire import decode_message, encode_message
from repro.dnssrv.auth import AuthoritativeServer
from repro.netsim.packet import Datagram
from repro.transport.serve import (
    DEFAULT_SLD,
    DnsService,
    ServeConfig,
    build_serve_zone,
    build_world,
)
from repro.transport.sim import SimTransport

_label = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_", min_size=1, max_size=20
)
_qname = st.lists(_label, min_size=1, max_size=4).map(".".join)
_msg_id = st.integers(min_value=0, max_value=0xFFFF)
_qtype = st.sampled_from(
    [QueryType.A, QueryType.AAAA, QueryType.TXT, QueryType.NS, QueryType.ANY]
)
#: Sometimes a fixture name (exercising answers), sometimes junk
#: (exercising NXDOMAIN/REFUSED) — the parser must survive them all.
_serve_qname = st.one_of(
    st.sampled_from([f"www.{DEFAULT_SLD}", f"api.{DEFAULT_SLD}"]),
    _qname.map(lambda name: f"{name}.{DEFAULT_SLD}"),
    _qname,
)


def assert_strict_round_trip(payload):
    """The emitted bytes parse strictly and re-encode identically."""
    message = decode_message(payload)
    assert encode_message(message) == payload
    return message


class _SlowOnlyAuth(AuthoritativeServer):
    """Same logic, template fast path disabled (respond is overridden)."""

    def respond(self, query, now):
        return super().respond(query, now)


class TestAuthTemplatePathEqualsSlowPath:
    @settings(max_examples=60, deadline=None)
    @given(qname=_serve_qname, qtype=_qtype, msg_id=_msg_id)
    def test_fast_and_slow_serving_emit_identical_bytes(
        self, qname, qtype, msg_id
    ):
        wire = build_query_wire(qname, qtype=qtype, msg_id=msg_id)
        outputs = []
        for server_cls in (AuthoritativeServer, _SlowOnlyAuth):
            transport = SimTransport()
            server = server_cls("45.76.1.10")
            server.load_zone(build_serve_zone())
            server.attach(transport, 53)
            replies = []
            transport.bind(
                "8.8.4.100", 5555, lambda dg, net: replies.append(dg.payload)
            )
            transport.send(
                Datagram("8.8.4.100", 5555, "45.76.1.10", 53, wire)
            )
            transport.run()
            outputs.append(replies)
        fast, slow = outputs
        assert fast == slow
        for payload in fast:
            assert_strict_round_trip(payload)


class TestSimProfilesEmitStrictWire:
    @settings(max_examples=40, deadline=None)
    @given(
        profile=st.sampled_from(
            ["recursive", "forwarder", "transparent", "dnssec"]
        ),
        qname=_serve_qname,
        qtype=_qtype,
        msg_id=_msg_id,
    )
    def test_every_reply_parses_and_round_trips(
        self, profile, qname, qtype, msg_id
    ):
        transport = SimTransport()
        world = build_world(
            ServeConfig(profile=profile, port=5300), transport, infra_port=53
        )
        replies = []
        transport.bind(
            "8.8.4.100", 5555, lambda dg, net: replies.append(dg.payload)
        )
        endpoint = world.endpoint
        transport.send(
            Datagram(
                "8.8.4.100", 5555, endpoint.ip, endpoint.port,
                build_query_wire(qname, qtype=qtype, msg_id=msg_id),
            )
        )
        transport.run()
        # Timeout-path SERVFAILs are replies too; whatever came back
        # must satisfy the strict round-trip.
        for payload in replies:
            message = assert_strict_round_trip(payload)
            assert message.header.msg_id == msg_id


@pytest.fixture(scope="module")
def live_service():
    service = DnsService(ServeConfig(port=0, drain_grace=0.5))
    endpoint = service.start()
    yield endpoint
    service.stop()


class TestLiveDaemonEmitsStrictWire:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(qname=_serve_qname, msg_id=_msg_id)
    def test_socket_replies_survive_the_strict_parser(
        self, live_service, qname, msg_id
    ):
        client = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        client.settimeout(3.0)
        try:
            client.sendto(
                build_query_wire(qname, msg_id=msg_id),
                (live_service.ip, live_service.port),
            )
            payload, _ = client.recvfrom(65535)
        finally:
            client.close()
        message = assert_strict_round_trip(payload)
        assert message.header.msg_id == msg_id
        assert message.header.flags.ra
