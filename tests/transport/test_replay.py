"""Record-then-replay: the regression backend reproduces sim output."""

from repro.dnslib.fastwire import build_query_wire
from repro.dnslib.wire import decode_message
from repro.dnslib.zone import Zone
from repro.dnssrv.auth import AuthoritativeServer
from repro.dnssrv.hierarchy import build_hierarchy
from repro.dnssrv.recursive import RecursiveResolver
from repro.netsim.network import Network
from repro.netsim.packet import Datagram
from repro.transport.replay import (
    ReplayTransport,
    TraceEvent,
    TraceRecorder,
    load_trace,
    save_trace,
)

SLD = "ucfsealresearch.net"
RESOLVER_IP = "93.184.10.1"
CLIENT_IP = "8.8.4.100"


def fixture_zone():
    zone = Zone(SLD)
    zone.add_a(f"www.{SLD}", "203.0.113.80")
    zone.add_a(f"api.{SLD}", "203.0.113.81")
    return zone


def simulate_workload(queries):
    """Run ``queries`` against a simulated recursive resolver, recording
    the resolver-bound traffic and its replies."""
    network = Network()
    hierarchy = build_hierarchy(network)
    hierarchy.auth.load_zone(fixture_zone())
    resolver = RecursiveResolver(RESOLVER_IP, hierarchy.root_servers)
    resolver.attach(network)
    recorder = TraceRecorder([(RESOLVER_IP, 53), (RESOLVER_IP, 10053)])
    network.attach_sink(recorder)
    replies = []
    network.bind(CLIENT_IP, 5555, lambda dg, net: replies.append(dg))
    for index, qname in enumerate(queries, start=1):
        network.send(
            Datagram(
                CLIENT_IP, 5555, RESOLVER_IP, 53,
                build_query_wire(qname, msg_id=index),
            )
        )
    network.run()
    return recorder.events, [dg.payload for dg in replies]


class TestTraceSerialization:
    def test_round_trips_through_jsonl(self, tmp_path):
        events = [
            TraceEvent(0.5, Datagram("1.2.3.4", 99, "5.6.7.8", 53, b"\x00\xff")),
            TraceEvent(1.25, Datagram("5.6.7.8", 53, "1.2.3.4", 99, b"ok")),
        ]
        path = save_trace(tmp_path / "trace.jsonl", events)
        assert load_trace(path) == events

    def test_empty_trace_round_trips(self, tmp_path):
        path = save_trace(tmp_path / "empty.jsonl", [])
        assert load_trace(path) == []


class TestReplayReproducesSimulation:
    def test_resolver_replay_emits_identical_reply_bytes(self, tmp_path):
        queries = [f"www.{SLD}", f"api.{SLD}", f"www.{SLD}"]
        events, sim_replies = simulate_workload(queries)
        assert len(sim_replies) == len(queries)
        # Only resolver-inbound traffic was recorded: client queries
        # plus the hierarchy's responses to the resolver's walk.
        assert all(
            event.datagram.dst_ip == RESOLVER_IP for event in events
        )
        path = save_trace(tmp_path / "workload.jsonl", events)

        # Replay against a *fresh* resolver with the trace as its whole
        # world: hierarchy responses arrive from the trace, so nothing
        # else needs to be bound.
        replay = ReplayTransport.from_file(path)
        resolver = RecursiveResolver(RESOLVER_IP, ["198.41.0.4"])
        resolver.attach(replay, 53)
        output = replay.run()
        client_bound = [
            dg.payload for _, dg in output if dg.dst_ip == CLIENT_IP
        ]
        assert client_bound == sim_replies

    def test_replay_clock_matches_recorded_times(self):
        seen = []
        events = [
            TraceEvent(1.0, Datagram("9.9.9.9", 99, "10.0.0.1", 53, b"a")),
            TraceEvent(3.5, Datagram("9.9.9.9", 99, "10.0.0.1", 53, b"b")),
        ]
        replay = ReplayTransport(events)
        replay.bind("10.0.0.1", 53, lambda dg, net: seen.append(net.now))
        replay.run()
        assert seen == [1.0, 3.5]

    def test_unbound_endpoint_counts_undelivered(self):
        replay = ReplayTransport(
            [TraceEvent(0.0, Datagram("9.9.9.9", 99, "10.0.0.1", 53, b"x"))]
        )
        replay.run()
        assert replay.undelivered == 1

    def test_internal_latency_orders_multi_component_worlds(self):
        # An auth server bound on the replay transport answers queries
        # delivered from the trace; its reply to the unbound client is
        # captured output stamped at arrival + latency.
        auth = AuthoritativeServer("45.76.1.10")
        auth.load_zone(fixture_zone())
        replay = ReplayTransport(
            [
                TraceEvent(
                    2.0,
                    Datagram(
                        CLIENT_IP, 5555, "45.76.1.10", 53,
                        build_query_wire(f"www.{SLD}", msg_id=9),
                    ),
                )
            ],
            internal_latency=0.25,
        )
        auth.attach(replay, 53)
        output = replay.run()
        assert len(output) == 1
        emitted_at, reply = output[0]
        assert emitted_at == 2.0
        message = decode_message(reply.payload)
        assert message.header.msg_id == 9
        assert message.first_a_record().data.address == "203.0.113.80"
