"""Socket backend mechanics: real loopback UDP behind the protocol."""

import asyncio
import socket

import pytest

from repro.netsim.packet import Datagram
from repro.transport.socketio import AsyncUdpTransport


@pytest.fixture()
def loop():
    loop = asyncio.new_event_loop()
    yield loop
    loop.close()


@pytest.fixture()
def transport(loop):
    transport = AsyncUdpTransport(loop)
    yield transport
    transport.close()


def run_loop_until(loop, predicate, timeout=2.0):
    """Drive the loop until ``predicate()`` holds (or fail the test)."""

    async def waiter():
        deadline = loop.time() + timeout
        while not predicate():
            if loop.time() > deadline:
                raise AssertionError("condition not reached in time")
            await asyncio.sleep(0.01)

    loop.run_until_complete(waiter())


class TestBinding:
    def test_ephemeral_bind_reports_actual_port(self, transport):
        listener = transport.bind("127.0.0.1", 0, lambda dg, net: None)
        assert listener.endpoint.ip == "127.0.0.1"
        assert listener.endpoint.port > 0
        assert transport.is_bound("127.0.0.1", listener.endpoint.port)
        assert listener.endpoint in transport.endpoints

    def test_loopback_subnet_addresses_bind(self, transport):
        # The in-daemon hierarchy lives on 127.77.0.x; Linux answers
        # for the whole 127.0.0.0/8 block without configuration.
        listener = transport.bind("127.77.0.1", 0, lambda dg, net: None)
        assert listener.endpoint.ip == "127.77.0.1"

    def test_unbind_releases_the_port(self, transport):
        listener = transport.bind("127.0.0.1", 0, lambda dg, net: None)
        port = listener.endpoint.port
        listener.close()
        assert not transport.is_bound("127.0.0.1", port)
        # The port is free again: a fresh bind on it succeeds.
        transport.bind("127.0.0.1", port, lambda dg, net: None)


class TestDatagramFlow:
    def test_external_client_round_trip(self, loop, transport):
        received = []
        listener = transport.bind(
            "127.0.0.1", 0,
            lambda dg, net: (received.append(dg), net.send(dg.reply(b"pong")))[0],
        )
        client = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        client.settimeout(2.0)
        client.bind(("127.0.0.1", 0))
        client.sendto(b"ping", (listener.endpoint.ip, listener.endpoint.port))
        run_loop_until(loop, lambda: transport.stats.sent >= 1)
        payload, address = client.recvfrom(65535)
        client.close()
        assert payload == b"pong"
        assert address[1] == listener.endpoint.port
        assert received[0].payload == b"ping"
        assert received[0].dst_port == listener.endpoint.port
        assert transport.stats.received == 1
        assert transport.stats.bytes_received == 4

    def test_spoofed_source_delivers_in_process(self, loop, transport):
        # A datagram claiming a source we do not own cannot go on the
        # wire, but a locally-bound destination still receives it with
        # the claimed source intact — the transparent-forwarder relay.
        seen = []
        upstream = transport.bind(
            "127.0.0.1", 0, lambda dg, net: seen.append(dg)
        )
        transport.send(
            Datagram(
                "198.51.100.9", 4242,
                upstream.endpoint.ip, upstream.endpoint.port, b"relayed",
            )
        )
        run_loop_until(loop, lambda: bool(seen))
        assert seen[0].src_ip == "198.51.100.9"
        assert seen[0].src_port == 4242
        assert transport.stats.spoof_delivered == 1
        assert transport.stats.sent == 0

    def test_unroutable_spoof_is_counted_and_dropped(self, transport):
        transport.send(
            Datagram("198.51.100.9", 4242, "198.51.100.10", 53, b"nope")
        )
        assert transport.stats.unroutable == 1

    def test_handler_exception_does_not_kill_the_loop(self, loop, transport):
        def exploding(dg, net):
            raise ValueError("bad packet day")

        listener = transport.bind("127.0.0.1", 0, exploding)
        survivor = []
        ok = transport.bind("127.0.0.1", 0, lambda dg, net: survivor.append(dg))
        client = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        client.sendto(b"boom", (listener.endpoint.ip, listener.endpoint.port))
        client.sendto(b"fine", (ok.endpoint.ip, ok.endpoint.port))
        run_loop_until(loop, lambda: bool(survivor))
        client.close()
        assert transport.stats.handler_errors == 1
        assert isinstance(transport.last_handler_error, ValueError)
        assert survivor[0].payload == b"fine"

    def test_schedule_runs_on_the_loop_clock(self, loop, transport):
        fired = []
        transport.schedule(0.01, lambda: fired.append(transport.now))
        run_loop_until(loop, lambda: bool(fired))
        cancelled = transport.schedule(60.0, lambda: fired.append(-1.0))
        cancelled.cancel()
        assert len(fired) == 1
