"""Daemon lifecycle: ready files, graceful drain, metrics, defenses."""

import json
import socket

import pytest

from repro.dnslib.constants import Rcode
from repro.dnslib.fastwire import build_query_wire
from repro.dnslib.wire import decode_message
from repro.transport.serve import (
    DEFAULT_SLD,
    DnsService,
    ServeConfig,
    build_serve_zone,
)


def make_client(timeout=2.0):
    client = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    client.settimeout(timeout)
    client.bind(("127.0.0.1", 0))
    return client


def query_wire(label="www", msg_id=1):
    return build_query_wire(f"{label}.{DEFAULT_SLD}", msg_id=msg_id)


class TestConfigValidation:
    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown profile"):
            ServeConfig(profile="authoritative-only")

    def test_negative_drain_grace_rejected(self):
        with pytest.raises(ValueError, match="drain_grace"):
            ServeConfig(drain_grace=-1.0)

    def test_fixture_zone_matches_declared_records(self):
        zone = build_serve_zone()
        assert zone.record_count == 3


class TestLifecycle:
    def test_ready_file_reports_the_live_endpoint(self, tmp_path):
        ready = tmp_path / "ready.json"
        service = DnsService(
            ServeConfig(port=0, ready_file=str(ready), drain_grace=0.5)
        )
        endpoint = service.start()
        try:
            info = json.loads(ready.read_text())
            assert info["profile"] == "recursive"
            assert info["ip"] == endpoint.ip
            assert info["port"] == endpoint.port
            assert info["infra_port"] > 0
        finally:
            service.stop()

    def test_stop_drains_and_folds_metrics(self, tmp_path):
        metrics_path = tmp_path / "metrics.json"
        service = DnsService(
            ServeConfig(port=0, metrics_out=str(metrics_path), drain_grace=1.0)
        )
        endpoint = service.start()
        client = make_client()
        sent = 3
        try:
            for index in range(sent):
                client.sendto(
                    query_wire(msg_id=index + 1), (endpoint.ip, endpoint.port)
                )
                client.recvfrom(65535)
        finally:
            client.close()
            service.stop()
        assert service.drained
        document = json.loads(metrics_path.read_text())
        counters = document["counters"]
        # The metrics document must be consistent with the workload:
        # every query answered, nothing pending at drain, UDP traffic
        # accounted (sent queries + replies at minimum).
        assert counters["serve.client_queries"] == sent
        assert counters["serve.answered"] == sent
        assert counters["auth.queries_served"] >= 1
        assert counters["udp.received"] >= sent
        assert counters["udp.sent"] >= sent
        assert document["gauges"]["serve.drain_pending_left"]["last"] == 0.0

    def test_drain_unbinds_the_client_port(self):
        service = DnsService(ServeConfig(port=0, drain_grace=0.2))
        endpoint = service.start()
        client = make_client(timeout=0.5)
        try:
            service.stop()
            client.sendto(query_wire(), (endpoint.ip, endpoint.port))
            with pytest.raises(socket.timeout):
                client.recvfrom(65535)
        finally:
            client.close()

    def test_start_twice_is_an_error(self):
        service = DnsService(ServeConfig(port=0, drain_grace=0.2))
        service.start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                service.start()
        finally:
            service.stop()

    def test_unbindable_address_surfaces_at_start(self):
        # 203.0.113.0/24 is TEST-NET-3: never a local interface, so the
        # daemon thread's bind failure must propagate to the caller.
        service = DnsService(ServeConfig(ip="203.0.113.7", port=0))
        with pytest.raises(Exception, match="cannot bind"):
            service.start()


class TestDefenseKnobs:
    def test_quota_refuses_over_budget_clients(self):
        service = DnsService(
            ServeConfig(port=0, quota=1.0, drain_grace=0.5)
        )
        endpoint = service.start()
        client = make_client()
        rcodes = []
        try:
            # ClientQueryQuota's default burst is 20: a fast burst of 30
            # queries must see REFUSED once the bucket empties.
            for index in range(30):
                client.sendto(
                    query_wire(msg_id=index + 1), (endpoint.ip, endpoint.port)
                )
                payload, _ = client.recvfrom(65535)
                rcodes.append(decode_message(payload).rcode)
        finally:
            client.close()
            service.stop()
        assert Rcode.REFUSED in rcodes
        assert rcodes[0] == Rcode.NOERROR  # within the initial burst
        counters = service.hub.registry.snapshot().counters
        assert counters["serve.defense.quota_refused"] == rcodes.count(
            Rcode.REFUSED
        )

    def test_rate_limit_suppresses_responses(self):
        service = DnsService(
            ServeConfig(port=0, rate_limit=1.0, drain_grace=0.5)
        )
        endpoint = service.start()
        client = make_client(timeout=0.3)
        answered = 0
        sent = 25
        try:
            # RRL default burst is 10: a 25-query flood gets at most the
            # burst's worth of responses; the rest are suppressed.
            for index in range(sent):
                client.sendto(
                    query_wire(msg_id=index + 1), (endpoint.ip, endpoint.port)
                )
                try:
                    client.recvfrom(65535)
                    answered += 1
                except socket.timeout:
                    pass
        finally:
            client.close()
            service.stop()
        assert 0 < answered < sent

    def test_negative_cache_short_circuits_repeat_misses(self):
        service = DnsService(
            ServeConfig(port=0, negative_ttl=30.0, drain_grace=0.5)
        )
        endpoint = service.start()
        client = make_client()
        try:
            for index in range(3):
                client.sendto(
                    build_query_wire(
                        f"no-such-name.{DEFAULT_SLD}", msg_id=index + 1
                    ),
                    (endpoint.ip, endpoint.port),
                )
                payload, _ = client.recvfrom(65535)
                assert decode_message(payload).rcode == Rcode.NXDOMAIN
        finally:
            client.close()
            service.stop()
        counters = service.hub.registry.snapshot().counters
        # First miss walks the hierarchy; the two repeats answer from
        # the negative cache without touching the auth server.
        assert counters["serve.defense.negative_hits"] == 2
