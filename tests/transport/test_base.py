"""Protocol conformance: every backend satisfies the transport seam."""

import asyncio

import pytest

from repro.netsim.network import Network
from repro.netsim.packet import Datagram
from repro.transport import (
    AsyncUdpTransport,
    CancelHandle,
    Endpoint,
    Listener,
    ReplayTransport,
    SimTransport,
    Transport,
    TransportError,
)


class TestProtocolConformance:
    def test_bare_network_is_a_transport(self):
        # Structural typing: Network never imports repro.transport, yet
        # satisfies the protocol — serving code keeps taking bare
        # networks everywhere the simulator already passes them.
        assert isinstance(Network(), Transport)

    @pytest.mark.parametrize(
        "factory", [SimTransport, ReplayTransport, AsyncUdpTransport]
    )
    def test_backends_are_transports(self, factory):
        assert isinstance(factory(), Transport)

    def test_network_schedule_is_cancellable(self):
        network = Network()
        fired = []
        handle = network.schedule(1.0, lambda: fired.append(1))
        assert isinstance(handle, CancelHandle)
        handle.cancel()
        network.run()
        assert fired == []

    def test_network_schedule_fires_on_simulated_clock(self):
        network = Network()
        times = []
        network.schedule(2.5, lambda: times.append(network.now))
        network.run()
        assert times == [2.5]


class TestEndpointAndListener:
    def test_endpoint_renders_as_address(self):
        assert str(Endpoint("127.0.0.1", 5300)) == "127.0.0.1:5300"

    def test_listener_close_unbinds(self):
        transport = SimTransport()
        listener = transport.bind("10.0.0.1", 53, lambda dg, net: None)
        assert isinstance(listener, Listener)
        assert listener.endpoint == Endpoint("10.0.0.1", 53)
        assert transport.is_bound("10.0.0.1", 53)
        listener.close()
        assert not transport.is_bound("10.0.0.1", 53)


class TestSimTransport:
    def test_delegates_to_the_wrapped_network(self):
        network = Network()
        transport = SimTransport(network)
        received = []
        transport.bind("10.0.0.2", 53, lambda dg, net: received.append(dg))
        transport.send(Datagram("10.0.0.9", 999, "10.0.0.2", 53, b"hi"))
        transport.run()
        assert [dg.payload for dg in received] == [b"hi"]
        assert network.stats.delivered == 1
        assert transport.now == network.now

    def test_handler_receives_the_wrapped_network(self):
        # The Network delivers with itself as the second handler arg;
        # serving objects must keep working when replies go out that way.
        transport = SimTransport()
        replies = []
        transport.bind(
            "10.0.0.3", 53, lambda dg, net: net.send(dg.reply(b"pong"))
        )
        transport.bind("10.0.0.9", 40000, lambda dg, net: replies.append(dg))
        transport.send(Datagram("10.0.0.9", 40000, "10.0.0.3", 53, b"ping"))
        transport.run()
        assert [dg.payload for dg in replies] == [b"pong"]


class TestReplayBindingRules:
    def test_double_bind_raises(self):
        transport = ReplayTransport()
        transport.bind("10.0.0.1", 53, lambda dg, net: None)
        with pytest.raises(TransportError):
            transport.bind("10.0.0.1", 53, lambda dg, net: None)

    def test_replay_runs_exactly_once(self):
        transport = ReplayTransport()
        transport.run()
        with pytest.raises(TransportError):
            transport.run()


class TestAsyncUdpBindingRules:
    def test_closed_transport_refuses_bind(self):
        transport = AsyncUdpTransport(asyncio.new_event_loop())
        try:
            transport.close()
            with pytest.raises(TransportError):
                transport.bind("127.0.0.1", 0, lambda dg, net: None)
        finally:
            transport.loop.close()

    def test_unbindable_address_raises(self):
        transport = AsyncUdpTransport(asyncio.new_event_loop())
        try:
            # 203.0.113.0/24 is TEST-NET-3: never a local interface.
            with pytest.raises(TransportError):
                transport.bind("203.0.113.7", 0, lambda dg, net: None)
        finally:
            transport.close()
            transport.loop.close()
