"""The sim≡socket differential: every profile answers real UDP with the
exact bytes the simulator produces for the same zone fixture.

This is the tentpole's acceptance test. The serving objects are shared;
only the transport differs — so any byte that diverges between the two
backends is a transport bug, not a resolver one.
"""

import socket

import pytest

from repro.dnslib.constants import Rcode
from repro.dnslib.fastwire import build_query_wire
from repro.dnslib.wire import decode_message
from repro.netsim.packet import Datagram
from repro.transport.serve import (
    DEFAULT_SLD,
    FIXTURE_RECORDS,
    DnsService,
    ServeConfig,
    build_world,
)
from repro.transport.sim import SimTransport

CLIENT_IP = "8.8.4.100"
CLIENT_PORT = 5555


def sim_answers(config, query_wires):
    """Serve ``query_wires`` on the simulator; reply payloads in order."""
    transport = SimTransport()
    world = build_world(config, transport, infra_port=53)
    replies = []
    transport.bind(CLIENT_IP, CLIENT_PORT, lambda dg, net: replies.append(dg))
    endpoint = world.endpoint
    for wire in query_wires:
        transport.send(
            Datagram(CLIENT_IP, CLIENT_PORT, endpoint.ip, endpoint.port, wire)
        )
        transport.run()
    return [dg.payload for dg in replies]


def socket_answers(config, query_wires, timeout=3.0):
    """Serve ``query_wires`` through the live daemon; replies in order."""
    service = DnsService(config)
    endpoint = service.start()
    client = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    client.settimeout(timeout)
    client.bind(("127.0.0.1", 0))
    payloads, sources = [], []
    try:
        for wire in query_wires:
            client.sendto(wire, (endpoint.ip, endpoint.port))
            payload, address = client.recvfrom(65535)
            payloads.append(payload)
            sources.append(address)
    finally:
        client.close()
        service.stop()
    return payloads, sources, service


def queries_for(profile):
    if profile == "dnssec":
        names = [
            f"valid.dnssec-validation.{DEFAULT_SLD}",
            f"www.{DEFAULT_SLD}",
        ]
    else:
        names = [f"{label}.{DEFAULT_SLD}" for label, _ in FIXTURE_RECORDS]
        names.append(names[0])  # a repeat exercises the cache path
    return [
        build_query_wire(name, msg_id=index)
        for index, name in enumerate(names, start=1)
    ]


@pytest.mark.parametrize(
    "profile", ["recursive", "forwarder", "transparent", "dnssec"]
)
class TestSimSocketDifferential:
    def test_reply_bytes_identical_across_backends(self, profile):
        wires = queries_for(profile)
        sim = sim_answers(ServeConfig(profile=profile, port=5300), wires)
        live, _, _ = socket_answers(
            ServeConfig(profile=profile, port=0), wires
        )
        assert len(sim) == len(wires)
        assert live == sim

    def test_answers_carry_the_fixture_addresses(self, profile):
        wires = queries_for(profile)
        live, _, _ = socket_answers(ServeConfig(profile=profile, port=0), wires)
        first = decode_message(live[0])
        assert first.rcode == Rcode.NOERROR
        expected = (
            "198.51.100.41" if profile == "dnssec" else FIXTURE_RECORDS[0][1]
        )
        assert first.first_a_record().data.address == expected


class TestTransparentOffPath:
    def test_reply_arrives_from_an_address_never_queried(self):
        wires = queries_for("transparent")
        config = ServeConfig(profile="transparent", port=0)
        _, sources, service = socket_answers(config, wires)
        # The transparent forwarder's signature: the upstream answers
        # the client directly, so the reply source is not the probed
        # address. The spoofed relay leg never touched the wire.
        assert all(ip == "127.77.0.4" for ip, _ in sources)
        udp_stats = service.hub.registry.snapshot().counters
        assert udp_stats.get("udp.spoof_delivered", 0) == len(wires)


class TestDnssecValidation:
    def test_bogus_rrsig_servfails_on_both_backends(self):
        wires = [
            build_query_wire(
                f"bogus.dnssec-validation.{DEFAULT_SLD}", msg_id=5
            )
        ]
        sim = sim_answers(ServeConfig(profile="dnssec", port=5300), wires)
        live, _, _ = socket_answers(ServeConfig(profile="dnssec", port=0), wires)
        assert live == sim
        assert decode_message(live[0]).rcode == Rcode.SERVFAIL
