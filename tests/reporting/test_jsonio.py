"""JSON export / regression-diff tests."""

import pytest

from repro.core import Campaign, CampaignConfig
from repro.reporting.jsonio import (
    diff_results,
    load_json_results,
    result_to_dict,
    write_json_results,
)


@pytest.fixture(scope="module")
def result():
    return Campaign(CampaignConfig(year=2018, scale=32768, seed=31)).run()


class TestExport:
    def test_dict_structure(self, result):
        data = result_to_dict(result)
        assert data["meta"]["year"] == 2018
        assert data["correctness"]["r2"] == result.correctness.r2
        assert data["estimates"]["ra_and_correct"] == \
            result.estimates.ra_and_correct
        assert "Malware" in data["malicious"]["categories"]
        assert data["ra"]["one"]["correct"] == result.ra_table.one.correct

    def test_roundtrip_via_file(self, result, tmp_path):
        target = write_json_results(result, tmp_path / "out" / "results.json")
        loaded = load_json_results(target)
        assert loaded == result_to_dict(result)

    def test_rcodes_use_paper_labels(self, result):
        data = result_to_dict(result)
        assert set(data["rcodes"]["without_answer"]) <= {
            "NoError", "FormErr", "ServFail", "NXDomain", "NotImp",
            "Refused", "YXDomain", "YXRRSet", "NXRRSet", "Not Auth",
        }


class TestDiff:
    def test_identical_runs_diff_empty(self, result):
        again = Campaign(CampaignConfig(year=2018, scale=32768, seed=31)).run()
        differences = diff_results(result_to_dict(result), result_to_dict(again))
        assert differences == {}

    def test_different_seed_detected(self, result):
        other = Campaign(CampaignConfig(year=2018, scale=32768, seed=32)).run()
        differences = diff_results(result_to_dict(result), result_to_dict(other))
        assert any(key.startswith("meta.seed") for key in differences)

    def test_tolerance_suppresses_small_drift(self):
        before = {"a": 100, "b": {"c": 1.00}}
        after = {"a": 101, "b": {"c": 1.004}}
        assert diff_results(before, after, rel_tolerance=0.02) == {}
        strict = diff_results(before, after)
        assert set(strict) == {"a", "b.c"}

    def test_missing_keys_reported(self):
        differences = diff_results({"a": 1}, {"b": 2})
        assert differences == {"a": (1, None), "b": (None, 2)}
