"""Markdown report generation tests."""

import pytest

from repro.analysis.compare import compare_years
from repro.core import Campaign, CampaignConfig
from repro.reporting import (
    campaign_markdown,
    comparison_markdown,
    write_markdown_report,
)


@pytest.fixture(scope="module")
def result():
    return Campaign(CampaignConfig(year=2018, scale=16384, seed=19)).run()


class TestCampaignMarkdown:
    def test_sections_present(self, result):
        document = campaign_markdown(result)
        for heading in (
            "# Open-resolver scan report — 2018",
            "## Headline",
            "## Probing summary (Table II)",
            "## Answer correctness (Table III)",
            "## Header behavior (Tables IV-VI)",
            "## Incorrect answers (Tables VII-VIII)",
            "## Malicious responses (Tables IX-X, countries)",
            "## Open-resolver estimates (section IV-B1)",
        ):
            assert heading in document

    def test_tables_fenced(self, result):
        document = campaign_markdown(result)
        assert document.count("```") % 2 == 0
        assert document.count("```") >= 20

    def test_estimates_extrapolated(self, result):
        document = campaign_markdown(result)
        full = result.estimates.ra_and_correct * result.scale
        assert f"{full:,}" in document

    def test_write_to_disk(self, result, tmp_path):
        target = write_markdown_report(result, tmp_path / "sub" / "report.md")
        assert target.exists()
        assert "# Open-resolver scan report" in target.read_text()


class TestComparisonMarkdown:
    def test_checklist(self, result):
        result_2013 = Campaign(
            CampaignConfig(year=2013, scale=16384, seed=19, time_compression=64.0)
        ).run()
        comparison = compare_years(
            result_2013.correctness,
            result.correctness,
            result_2013.estimates,
            result.estimates,
            result_2013.malicious_categories,
            result.malicious_categories,
        )
        document = comparison_markdown(result_2013, result, comparison)
        assert "# Temporal contrast — 2013 vs 2018" in document
        assert "| Claim | Holds |" in document
        assert "Open resolvers declined" in document
