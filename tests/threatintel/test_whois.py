"""Whois database tests."""

from repro.threatintel.whois import PRIVATE_NETWORK, WhoisDatabase


def make_db():
    db = WhoisDatabase()
    db.add("216.194.64.0/20", "Tera-byte Dot Com")
    db.add("74.220.192.0/19", "Unified Layer")
    db.add("208.91.196.0/22", "Confluence Network Inc")
    db.add("141.8.224.0/21", "Rook Media GmbH")
    db.add("114.32.0.0/11", "Chunghwa Telecom")
    return db


class TestWhoisDatabase:
    def test_table8_orgs(self):
        # Spot checks against Table VIII of the paper.
        db = make_db()
        assert db.org_name("216.194.64.193") == "Tera-byte Dot Com"
        assert db.org_name("74.220.199.15") == "Unified Layer"
        assert db.org_name("208.91.197.91") == "Confluence Network Inc"
        assert db.org_name("141.8.225.68") == "Rook Media GmbH"
        assert db.org_name("114.44.34.86") == "Chunghwa Telecom"

    def test_private_addresses(self):
        db = make_db()
        for ip in ("192.168.1.1", "192.168.2.1", "172.30.1.254", "10.0.0.1"):
            assert db.org_name(ip) == PRIVATE_NETWORK

    def test_unregistered_space(self):
        db = make_db()
        assert db.org_name("5.5.5.5") is None

    def test_longest_prefix(self):
        db = WhoisDatabase()
        db.add("20.0.0.0/8", "Big Org")
        db.add("20.20.20.0/24", "Small Org")
        assert db.org_name("20.20.20.20") == "Small Org"
        assert db.org_name("20.30.0.1") == "Big Org"

    def test_len(self):
        assert len(make_db()) == 5
