"""Cymon substrate tests."""

from repro.threatintel.cymon import CymonDatabase, ThreatCategory, ThreatReport


class TestCymonDatabase:
    def test_empty_address_not_malicious(self):
        db = CymonDatabase()
        assert not db.is_malicious("8.8.8.8")
        assert db.dominant_category("8.8.8.8") is None

    def test_single_report_marks_malicious(self):
        db = CymonDatabase()
        db.add_report(ThreatReport("208.91.197.91", ThreatCategory.MALWARE))
        assert db.is_malicious("208.91.197.91")

    def test_dominant_category_by_frequency(self):
        # The paper's rule: most frequently reported category wins.
        db = CymonDatabase()
        db.add_reports("208.91.197.91", ThreatCategory.PHISHING, count=2)
        db.add_reports("208.91.197.91", ThreatCategory.MALWARE, count=5)
        db.add_reports("208.91.197.91", ThreatCategory.BOTNET, count=1)
        assert db.dominant_category("208.91.197.91") == ThreatCategory.MALWARE

    def test_tie_broken_by_table9_order(self):
        db = CymonDatabase()
        db.add_reports("1.2.3.4", ThreatCategory.PHISHING, count=3)
        db.add_reports("1.2.3.4", ThreatCategory.MALWARE, count=3)
        assert db.dominant_category("1.2.3.4") == ThreatCategory.MALWARE

    def test_counts(self):
        db = CymonDatabase()
        db.add_reports("1.1.1.1", ThreatCategory.SPAM, count=4)
        db.add_reports("2.2.2.2", ThreatCategory.SCAN, count=2)
        assert len(db) == 6
        assert db.reported_address_count == 2

    def test_api_calls_counted(self):
        db = CymonDatabase()
        db.reports_for("1.1.1.1")
        db.is_malicious("1.1.1.1")
        assert db.api_calls == 2

    def test_render_report_mentions_categories(self):
        db = CymonDatabase()
        db.add_reports("208.91.197.91", ThreatCategory.MALWARE, count=7)
        db.add_reports("208.91.197.91", ThreatCategory.PHISHING, count=2)
        text = db.render_report("208.91.197.91")
        assert "208.91.197.91" in text
        assert "Malware" in text
        assert "Phishing" in text
        assert "Dominant category: Malware" in text

    def test_render_report_for_clean_address(self):
        db = CymonDatabase()
        assert "No reports found." in db.render_report("9.9.9.9")

    def test_all_seven_categories_exist(self):
        labels = {category.value for category in ThreatCategory}
        assert labels == {
            "Malware",
            "Phishing",
            "Spam",
            "SSH Bruteforce",
            "Scan",
            "Botnet",
            "Email Bruteforce",
        }
