"""Property-based differential for GeoDatabase longest-prefix match.

The indexed lookup (bisect + bounded backward scan with the max-span
pruning cut) must agree with the obviously-correct brute force — scan
every registration, keep the most specific covering block — on every
database shape hypothesis can build: nested prefixes, adjacent blocks,
a /0 covering everything, duplicate starts, lookups far from any
registration.

This pins the backward-scan regression: the old pruning heuristic
stopped at any wide block, so an address covered *only* by a broad
ancestor (say a /8 behind an unrelated /24) looked up as unregistered.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.ipv4 import Ipv4Block
from repro.threatintel.geo import GeoDatabase, GeoEntry


def brute_force(entries, value):
    """Reference LPM: latest most-specific covering registration.

    Ties on prefix go to the later registration, matching the indexed
    path's stable sort + backward scan.
    """
    best = None
    for entry in entries:
        if value in entry.block and (
            best is None or entry.block.prefix >= best.block.prefix
        ):
            best = entry
    return best


# A compact universe keeps covering blocks likely while still
# exercising every span class from /0 to /32.
_PREFIXES = st.integers(min_value=0, max_value=32)
_ADDRESSES = st.integers(min_value=0, max_value=2**32 - 1)


@st.composite
def cidr_blocks(draw):
    prefix = draw(_PREFIXES)
    address = draw(_ADDRESSES)
    span = 1 << (32 - prefix)
    first = (address // span) * span
    octets = [(first >> shift) & 0xFF for shift in (24, 16, 8, 0)]
    return f"{'.'.join(str(o) for o in octets)}/{prefix}"


@st.composite
def databases(draw):
    db = GeoDatabase()
    for index, cidr in enumerate(
        draw(st.lists(cidr_blocks(), min_size=0, max_size=24))
    ):
        db.add(cidr, country="US", asn=index + 1)
    return db


def int_to_ip(value):
    return ".".join(
        str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
    )


@settings(max_examples=300, deadline=None)
@given(db=databases(), value=_ADDRESSES)
def test_lookup_matches_brute_force(db, value):
    expected = brute_force(db.entries(), value)
    got = db.lookup(int_to_ip(value))
    if expected is None:
        assert got is None
    else:
        assert got is not None
        # Same specificity and same data; when several registrations
        # duplicate a block exactly, any of them is a correct answer as
        # long as the metadata matches the reference's choice of block.
        assert got.block.prefix == expected.block.prefix
        assert value in got.block


@settings(max_examples=200, deadline=None)
@given(
    db=databases(),
    blocks=st.lists(cidr_blocks(), min_size=1, max_size=4),
    value=_ADDRESSES,
)
def test_lookup_agrees_after_incremental_adds(db, blocks, value):
    # Re-indexing after mutation must preserve the differential.
    db.lookup(int_to_ip(value))  # force an index build, then dirty it
    for index, cidr in enumerate(blocks):
        db.add(cidr, country="DE", asn=100 + index)
    expected = brute_force(db.entries(), value)
    got = db.lookup(int_to_ip(value))
    assert (got is None) == (expected is None)
    if got is not None:
        assert got.block.prefix == expected.block.prefix


class TestBackwardScanRegression:
    """The concrete shape the old ``prefix <= 8`` cut got wrong."""

    def test_broad_ancestor_behind_unrelated_specific_block(self):
        db = GeoDatabase()
        db.add("0.0.0.0/0", "US", asn=1)
        db.add("10.0.0.0/8", "DE", asn=2)
        # 11.0.0.1 is covered only by the /0; the scan starts at the
        # /8 (the nearest earlier start) and must keep walking past it.
        entry = db.lookup("11.0.0.1")
        assert entry is not None
        assert entry.asn == 1

    def test_specific_block_still_shadows_its_ancestor(self):
        db = GeoDatabase()
        db.add("0.0.0.0/0", "US", asn=1)
        db.add("10.0.0.0/8", "DE", asn=2)
        assert db.lookup("10.1.2.3").asn == 2

    def test_unregistered_gap_is_none(self):
        db = GeoDatabase()
        db.add("10.0.0.0/8", "DE", asn=2)
        db.add("192.168.0.0/16", "US", asn=3)
        assert db.lookup("172.16.0.1") is None
