"""Geolocation database tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.ipv4 import int_to_ip
from repro.threatintel.geo import COUNTRY_NAMES, GeoDatabase, country_name


def make_db():
    db = GeoDatabase()
    db.add("74.220.0.0/16", "US", asn=46606, as_name="Unified Layer")
    db.add("208.91.196.0/22", "US", asn=40034, as_name="Confluence Networks")
    db.add("141.8.224.0/21", "CH", asn=201693, as_name="Rook Media")
    db.add("114.32.0.0/11", "TW", asn=3462, as_name="Chunghwa Telecom")
    return db


class TestGeoDatabase:
    def test_basic_lookup(self):
        db = make_db()
        entry = db.lookup("74.220.199.15")
        assert entry.country == "US"
        assert entry.as_name == "Unified Layer"

    def test_miss_returns_none(self):
        db = make_db()
        assert db.lookup("5.5.5.5") is None
        assert db.country_of("5.5.5.5") is None

    def test_country_of(self):
        db = make_db()
        assert db.country_of("141.8.225.68") == "CH"
        assert db.asn_of("141.8.225.68") == 201693

    def test_longest_prefix_wins(self):
        db = GeoDatabase()
        db.add("10.0.0.0/8", "US")
        db.add("10.1.0.0/16", "DE")
        assert db.country_of("10.1.2.3") == "DE"
        assert db.country_of("10.2.0.1") == "US"

    def test_boundaries(self):
        db = GeoDatabase()
        db.add("192.0.2.0/24", "FR")
        assert db.country_of("192.0.2.0") == "FR"
        assert db.country_of("192.0.2.255") == "FR"
        assert db.country_of("192.0.3.0") is None

    def test_lookup_counter(self):
        db = make_db()
        db.lookup("74.220.199.15")
        db.country_of("1.1.1.1")
        assert db.lookups == 2

    def test_country_codes_uppercased(self):
        db = GeoDatabase()
        db.add("1.0.0.0/8", "us")
        assert db.country_of("1.2.3.4") == "US"

    @given(st.integers(0, 0xFFFFFFFF))
    def test_lookup_agrees_with_linear_scan(self, value):
        db = make_db()
        ip = int_to_ip(value)
        entry = db.lookup(ip)
        covering = [e for e in db._entries if value in e.block]
        if not covering:
            assert entry is None
        else:
            expected = max(covering, key=lambda e: e.block.prefix)
            assert entry == expected


class TestCountryNames:
    def test_paper_countries_present(self):
        for code in ("US", "IN", "HK", "VG", "AE", "CN", "TR", "IR", "KY"):
            assert code in COUNTRY_NAMES

    def test_country_name_lookup(self):
        assert country_name("us") == "United States"
        assert country_name("IN") == "India"

    def test_unknown_code_falls_back(self):
        assert country_name("xx") == "XX"
