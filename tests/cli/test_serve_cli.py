"""End-to-end ``repro serve``: a real daemon process, a real SIGTERM.

This is the CI serve job in miniature: start the daemon on an ephemeral
port, wait for the ready file, resolve a fixture name over UDP, send
SIGTERM, and assert a clean drain — exit code 0 and a metrics document
consistent with the workload.
"""

import json
import signal
import socket
import subprocess
import sys
import time

from repro.dnslib.fastwire import build_query_wire
from repro.dnslib.wire import decode_message
from repro.transport.serve import DEFAULT_SLD

STARTUP_TIMEOUT = 10.0
SHUTDOWN_TIMEOUT = 15.0


def start_daemon(tmp_path, *extra_args):
    ready = tmp_path / "ready.json"
    metrics = tmp_path / "metrics.json"
    process = subprocess.Popen(
        [
            sys.executable, "-c",
            "import sys; from repro.cli.main import main; sys.exit(main())",
            "serve", "--port", "0",
            "--ready-file", str(ready),
            "--metrics-out", str(metrics),
            "--drain-grace", "2.0",
            *extra_args,
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
    )
    deadline = time.monotonic() + STARTUP_TIMEOUT
    while not ready.exists():
        if process.poll() is not None:
            out, _ = process.communicate()
            raise AssertionError(f"daemon died during startup:\n{out}")
        if time.monotonic() > deadline:
            process.kill()
            raise AssertionError("daemon never wrote the ready file")
        time.sleep(0.05)
    return process, json.loads(ready.read_text()), metrics


def resolve(info, qname, msg_id=1, timeout=3.0):
    client = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    client.settimeout(timeout)
    try:
        client.sendto(
            build_query_wire(qname, msg_id=msg_id), (info["ip"], info["port"])
        )
        payload, _ = client.recvfrom(65535)
    finally:
        client.close()
    return decode_message(payload)


class TestServeCommand:
    def test_sigterm_drains_cleanly_and_writes_metrics(self, tmp_path):
        process, info, metrics_path = start_daemon(tmp_path)
        try:
            assert info["profile"] == "recursive"
            response = resolve(info, f"www.{DEFAULT_SLD}", msg_id=77)
            assert response.header.msg_id == 77
            assert response.first_a_record().data.address == "203.0.113.80"
        finally:
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=SHUTDOWN_TIMEOUT)
        assert process.returncode == 0, out
        assert "drained (clean)" in out
        counters = json.loads(metrics_path.read_text())["counters"]
        assert counters["serve.client_queries"] == 1
        assert counters["serve.answered"] == 1
        assert counters["auth.queries_served"] == 1

    def test_profile_flag_selects_the_forwarder(self, tmp_path):
        process, info, metrics_path = start_daemon(
            tmp_path, "--profile", "forwarder"
        )
        try:
            assert info["profile"] == "forwarder"
            response = resolve(info, f"api.{DEFAULT_SLD}", msg_id=3)
            assert response.first_a_record().data.address == "203.0.113.81"
        finally:
            process.send_signal(signal.SIGTERM)
            out, _ = process.communicate(timeout=SHUTDOWN_TIMEOUT)
        assert process.returncode == 0, out
        counters = json.loads(metrics_path.read_text())["counters"]
        # Forwarder accounting: one relay in, one relay out, resolved
        # by the hidden upstream.
        assert counters["serve.client_queries"] == 1
        assert counters["serve.answered"] == 1
        assert counters["serve.upstream.client_queries"] == 1

    def test_sigint_equivalent_to_sigterm(self, tmp_path):
        process, info, _ = start_daemon(tmp_path)
        process.send_signal(signal.SIGINT)
        out, _ = process.communicate(timeout=SHUTDOWN_TIMEOUT)
        assert process.returncode == 0, out
        assert "drained" in out

    def test_unknown_profile_is_an_argparse_error(self):
        result = subprocess.run(
            [
                sys.executable, "-c",
                "import sys; from repro.cli.main import main; "
                "sys.exit(main())",
                "serve", "--profile", "bogus",
            ],
            capture_output=True, text=True, timeout=30,
        )
        assert result.returncode == 2
        assert "--profile" in result.stderr
