"""CLI tests: every subcommand runs end to end at a coarse scale."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["frobnicate"])

    def test_scan_defaults(self):
        args = build_parser().parse_args(["scan"])
        assert args.year == 2018
        assert args.scale == 8192

    def test_year_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scan", "--year", "2020"])


class TestCommands:
    def test_scan_summary(self, capsys):
        assert main(["scan", "--scale", "65536", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "open resolvers" in out

    def test_scan_full_report(self, capsys):
        assert main(
            ["scan", "--scale", "65536", "--seed", "1", "--full-report"]
        ) == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "Table X" in out

    def test_scan_save_then_analyze(self, capsys, tmp_path):
        dataset_dir = str(tmp_path / "ds")
        assert main(
            ["scan", "--scale", "65536", "--seed", "1", "--save", dataset_dir]
        ) == 0
        capsys.readouterr()
        assert main(["analyze", dataset_dir]) == 0
        out = capsys.readouterr().out
        assert "Offline analysis" in out
        assert "Table VIII" in out or "IP address" in out

    def test_scan_markdown(self, capsys, tmp_path):
        target = tmp_path / "report.md"
        assert main(
            ["scan", "--scale", "65536", "--seed", "1", "--markdown",
             str(target)]
        ) == 0
        assert target.exists()
        assert "# Open-resolver scan report" in target.read_text()

    def test_compare(self, capsys):
        assert main(["compare", "--scale", "32768", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Open resolvers" in out
        assert "declined" in out

    def test_fingerprint(self, capsys):
        assert main(["fingerprint", "--scale", "32768", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "version.bind census" in out

    def test_monitor(self, capsys):
        assert main(
            ["monitor", "--epochs", "2", "--scale", "65536", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "epoch 0" in out
        assert "Trend:" in out

    def test_exposure(self, capsys):
        assert main(
            ["exposure", "--clients", "30", "--queries", "3",
             "--resolvers", "10", "--malicious-share", "0.2"]
        ) == 0
        out = capsys.readouterr().out
        assert "hijacked" in out

    def test_amplify(self, capsys):
        assert main(["amplify", "--resolvers", "5", "--rounds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Amplification factors" in out
        assert "victim absorbed" in out

    def test_dnssec(self, capsys):
        assert main(["dnssec", "--scale", "32768", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "DNSSEC validator census" in out

    def test_classify(self, capsys):
        assert main(
            ["classify", "--recursives", "3", "--proxies", "6",
             "--fabricators", "2", "--upstreams", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "forwarding proxy" in out

    def test_inject(self, capsys):
        assert main(["inject", "--resolvers", "10", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "Record-injection test" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--scale", "65536", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "Seed sweep" in out
        assert "open_resolvers" in out


class TestFaultAndResumeFlags:
    def test_fault_flag_defaults(self):
        args = build_parser().parse_args(["scan"])
        assert args.fault_profile == "none"
        assert args.max_shard_retries == 2
        assert args.checkpoint is None
        assert args.resume is None

    def test_unknown_fault_profile_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scan", "--fault-profile", "chaotic"])

    def test_scan_with_fault_profile(self, capsys):
        assert main(
            ["scan", "--scale", "65536", "--seed", "1",
             "--fault-profile", "hostile"]
        ) == 0
        out = capsys.readouterr().out
        assert "faults 'hostile'" in out
        assert "open resolvers" in out

    def test_scan_checkpoint_then_resume(self, capsys, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        base = ["scan", "--scale", "65536", "--seed", "1", "--workers", "2"]
        assert main(base + ["--checkpoint", checkpoint_dir]) == 0
        first = capsys.readouterr().out
        assert len(list((tmp_path / "ckpt").glob("shard_*.pkl"))) == 2
        assert main(base + ["--resume", checkpoint_dir]) == 0
        resumed = capsys.readouterr().out
        assert "resuming from" in resumed
        # Same summary lines after the (differing) scan headers.
        assert first.splitlines()[1:] == resumed.splitlines()[1:]

    def test_resume_from_mismatched_checkpoint_fails_cleanly(
        self, capsys, tmp_path
    ):
        checkpoint_dir = str(tmp_path / "ckpt")
        assert main(
            ["scan", "--scale", "65536", "--seed", "1", "--workers", "2",
             "--checkpoint", checkpoint_dir]
        ) == 0
        capsys.readouterr()
        assert main(
            ["scan", "--scale", "65536", "--seed", "2", "--workers", "2",
             "--resume", checkpoint_dir]
        ) == 2
        out = capsys.readouterr().out
        assert "Cannot resume from" in out


class TestScanExitCodes:
    def test_degraded_campaign_exits_3(self, capsys, monkeypatch):
        from repro.core.shard import CHAOS_RAISE_ENV

        # Kill shard 1 on every attempt with retries off: the scan
        # completes degraded and must say so in its exit code.
        monkeypatch.setenv(CHAOS_RAISE_ENV, "1:99")
        assert main(
            ["scan", "--scale", "65536", "--seed", "1", "--workers", "2",
             "--max-shard-retries", "0"]
        ) == 3
        captured = capsys.readouterr()
        assert "degraded campaign" in captured.err
        assert "exiting 3" in captured.err

    def test_min_coverage_above_healthy_run_passes(self, capsys):
        assert main(
            ["scan", "--scale", "65536", "--seed", "1",
             "--min-coverage", "0.99"]
        ) == 0
        assert "degraded" not in capsys.readouterr().err

    def test_min_coverage_rejects_bad_fraction(self, capsys):
        assert main(
            ["scan", "--scale", "65536", "--min-coverage", "1.5"]
        ) == 2
        assert "fraction" in capsys.readouterr().out


class TestAttackCommand:
    #: Cheap matrix: 1 family x 4 postures at a small schedule.
    FAST = ["attack", "--seed", "5", "--resolvers", "3",
            "--attack-queries", "24", "--families", "nxns"]

    def test_smoke(self, capsys):
        assert main(self.FAST) == 0
        out = capsys.readouterr().out
        assert "Attack x defense matrix" in out
        assert "nxns" in out
        assert "hardened" in out

    def test_unknown_family_rejected(self, capsys):
        assert main(["attack", "--families", "slowloris"]) == 2
        assert "unknown attack families" in capsys.readouterr().out

    def test_markdown_and_metrics_outputs(self, capsys, tmp_path):
        import json

        markdown = tmp_path / "attack.md"
        metrics = tmp_path / "metrics.json"
        assert main(
            self.FAST
            + ["--markdown", str(markdown), "--metrics-out", str(metrics)]
        ) == 0
        assert "Attack x defense matrix" in markdown.read_text()
        document = json.loads(metrics.read_text())
        assert document["counters"]["attacks.cells_run"] == 8

    def test_scan_attacks_flag_appends_matrix(self, capsys):
        assert main(
            ["scan", "--scale", "65536", "--seed", "1", "--attacks",
             "--full-report"]
        ) == 0
        assert "Attack x defense matrix" in capsys.readouterr().out
