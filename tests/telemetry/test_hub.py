"""TelemetryHub unit behavior: config, heartbeats, fault spans, merge."""

import pickle

import pytest

from repro.netsim.faults import FaultPlan
from repro.telemetry import (
    TelemetryConfig,
    TelemetryHub,
    TelemetrySnapshot,
    as_hub,
    maybe_span,
)


class TestConfig:
    def test_defaults_enabled_and_picklable(self):
        config = TelemetryConfig()
        assert config.enabled
        assert pickle.loads(pickle.dumps(config)) == config

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(heartbeat_interval=0.0)
        with pytest.raises(ValueError):
            TelemetryConfig(max_heartbeats=1)
        with pytest.raises(ValueError):
            TelemetryConfig(flight_capacity=0)


class TestAsHub:
    def test_none_and_disabled_collapse_to_none(self):
        assert as_hub(None) is None
        assert as_hub(TelemetryConfig(enabled=False)) is None
        assert as_hub(TelemetryHub(TelemetryConfig(enabled=False))) is None

    def test_config_builds_hub(self):
        hub = as_hub(TelemetryConfig(heartbeat_interval=2.0))
        assert isinstance(hub, TelemetryHub)
        assert hub.config.heartbeat_interval == 2.0

    def test_ready_hub_passes_through(self):
        hub = TelemetryHub()
        assert as_hub(hub) is hub

    def test_anything_else_rejected(self):
        with pytest.raises(TypeError):
            as_hub(True)


class TestMaybeSpan:
    def test_none_hub_is_noop(self):
        with maybe_span(None, "phase"):
            pass

    def test_hub_records_span(self):
        hub = TelemetryHub()
        with maybe_span(hub, "phase", seed=3):
            pass
        (span,) = hub.tracer.spans
        assert span.name == "phase"
        assert span.meta == {"seed": 3}


class TestHeartbeats:
    def test_heartbeat_polls_samplers_and_rates(self):
        hub = TelemetryHub()
        depth = {"value": 17.0}
        hub.add_sampler("scheduler.pending_events", lambda: depth["value"])
        hub.registry.counter("prober.q1_wire_sent").inc(100)
        beat = hub.heartbeat(10.0)
        assert beat["sim_time"] == 10.0
        assert beat["q1_wire_sent"] == 100
        assert beat["gauges"]["scheduler.pending_events"] == 17.0
        assert beat["gauges"]["prober.probes_per_sim_sec"] == pytest.approx(10.0)
        depth["value"] = 3.0
        hub.registry.counter("prober.q1_wire_sent").inc(50)
        beat = hub.heartbeat(15.0)
        # Rate is per-interval, not cumulative.
        assert beat["gauges"]["prober.probes_per_sim_sec"] == pytest.approx(10.0)
        gauge = hub.registry.gauge("scheduler.pending_events")
        assert gauge.min == 3.0 and gauge.max == 17.0

    def test_decimation_bounds_the_log(self):
        hub = TelemetryHub(TelemetryConfig(max_heartbeats=8, heartbeat_interval=1.0))
        now = 0.0
        for _ in range(100):
            now = hub._next_heartbeat
            hub.heartbeat(now)
        assert len(hub.heartbeats) < 8
        # Decimation doubled the interval instead of dropping coverage.
        assert hub._heartbeat_interval > 1.0
        times = [beat["sim_time"] for beat in hub.heartbeats]
        assert times == sorted(times)


class TestFaultWindowSpans:
    def _plan(self):
        return FaultPlan(
            spike_period=100.0, spike_duration=10.0, spike_factor=4.0
        )

    def test_windows_inside_range_become_spans(self):
        hub = TelemetryHub()
        added = hub.add_fault_window_spans(self._plan(), 0.0, 350.0)
        assert added == 4  # windows at 0, 100, 200, 300
        spans = [s for s in hub.tracer.spans if s.name == "fault:latency_spike"]
        assert len(spans) == 4
        assert spans[1].start_sim == 100.0
        assert spans[1].end_sim == 110.0
        counter = hub.registry.counter("fault.latency_spike_windows")
        assert counter.value == 4

    def test_span_cap_keeps_true_total_in_counter(self):
        hub = TelemetryHub()
        added = hub.add_fault_window_spans(self._plan(), 0.0, 100_000.0, limit=64)
        assert added == 64
        assert hub.registry.counter("fault.latency_spike_windows").value == 1000

    def test_no_plan_or_empty_range_is_zero(self):
        hub = TelemetryHub()
        assert hub.add_fault_window_spans(None, 0.0, 100.0) == 0
        assert hub.add_fault_window_spans(self._plan(), 50.0, 50.0) == 0


class TestMergeSnapshot:
    def _shard_snapshot(self, q1: int) -> TelemetrySnapshot:
        shard = TelemetryHub()
        shard.registry.counter("prober.q1_wire_sent").inc(q1)
        shard.registry.histogram("prober.q1_to_r2_latency_s").observe(0.05)
        with shard.span("shard", index=0):
            pass
        shard.heartbeat(5.0)
        return shard.snapshot()

    def test_counters_spans_heartbeats_fold_in(self):
        parent = TelemetryHub()
        with parent.span("campaign"):
            parent.merge_snapshot(self._shard_snapshot(10), shard=0)
            parent.merge_snapshot(self._shard_snapshot(32), shard=1)
        snapshot = parent.snapshot()
        assert snapshot.metrics.counters["prober.q1_wire_sent"] == 42
        histogram = snapshot.metrics.histograms["prober.q1_to_r2_latency_s"]
        assert histogram["count"] == 2
        shard_spans = [
            span for span in snapshot.spans if span["name"] == "shard"
        ]
        assert {span["meta"]["shard"] for span in shard_spans} == {0, 1}
        assert {beat["shard"] for beat in snapshot.heartbeats} == {0, 1}

    def test_merging_none_is_noop(self):
        parent = TelemetryHub()
        parent.merge_snapshot(None)
        assert parent.snapshot().metrics.counters == {}

    def test_snapshot_documents(self, tmp_path):
        snapshot = self._shard_snapshot(5)
        metrics_path = snapshot.write_metrics(tmp_path / "metrics.json")
        trace_path = snapshot.write_trace(tmp_path / "trace.json")
        import json

        metrics = json.loads(metrics_path.read_text())
        trace = json.loads(trace_path.read_text())
        assert metrics["counters"]["prober.q1_wire_sent"] == 5
        assert len(metrics["heartbeats"]) == 1
        assert trace["spans"][0]["name"] == "shard"

    def test_snapshot_pickles(self):
        snapshot = self._shard_snapshot(5)
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.metrics.counters == snapshot.metrics.counters
        assert clone.spans == snapshot.spans
