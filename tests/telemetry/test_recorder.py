"""Flight recorder: bounded ring, drop accounting, atomic dumps."""

import json

import pytest

from repro.telemetry.recorder import DEFAULT_CAPACITY, FlightRecorder


def _fill(recorder: FlightRecorder, count: int) -> None:
    for index in range(count):
        recorder.record(
            float(index), "send", "1.2.3.4", 31337, "8.8.8.8", 53, 64
        )


class TestRing:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_default_capacity(self):
        assert FlightRecorder().capacity == DEFAULT_CAPACITY

    def test_keeps_last_n_oldest_first(self):
        recorder = FlightRecorder(capacity=4)
        _fill(recorder, 10)
        assert len(recorder) == 4
        assert recorder.recorded == 10
        times = [event["sim_time"] for event in recorder.events()]
        assert times == [6.0, 7.0, 8.0, 9.0]

    def test_event_shape(self):
        recorder = FlightRecorder(capacity=2)
        recorder.record(1.5, "deliver", "8.8.8.8", 53, "1.2.3.4", 31337, 120)
        (event,) = recorder.events()
        assert event == {
            "sim_time": 1.5,
            "kind": "deliver",
            "src": "8.8.8.8:53",
            "dst": "1.2.3.4:31337",
            "bytes": 120,
        }

    def test_drop_accounting(self):
        recorder = FlightRecorder(capacity=3)
        _fill(recorder, 2)
        assert recorder.to_dict()["dropped"] == 0
        _fill(recorder, 5)
        document = recorder.to_dict(reason="chaos")
        assert document["recorded"] == 7
        assert document["dropped"] == 4
        assert document["reason"] == "chaos"
        assert document["capacity"] == 3


class TestDump:
    def test_dump_writes_json_and_no_tmp_remains(self, tmp_path):
        recorder = FlightRecorder(capacity=8)
        _fill(recorder, 3)
        target = recorder.dump(
            tmp_path / "post" / "flight.json", reason="shard 2 died"
        )
        document = json.loads(target.read_text())
        assert document["reason"] == "shard 2 died"
        assert len(document["events"]) == 3
        assert list(tmp_path.glob("**/*.tmp")) == []
