"""Golden byte-identity and end-to-end telemetry coverage.

The overriding contract: telemetry is an *observer*. Tables II–X must
be byte-identical with telemetry enabled — serial or sharded, batch or
stream — at the same (seed, scale, year). These tests pin that, plus
that the observation itself is faithful (counters agree with the
capture ledger) and that the CLI export surface works.
"""

import dataclasses
import json

import pytest

from repro.core import Campaign, CampaignConfig
from repro.core.shard import run_sharded
from repro.telemetry import TelemetryConfig, TelemetryHub

from tests.conftest import E2E_SCALE

CONFIG = CampaignConfig(year=2018, scale=E2E_SCALE, seed=11)


@pytest.fixture(scope="module")
def observed():
    """The session world re-run with full telemetry attached."""
    return Campaign(CONFIG).run(telemetry=TelemetryConfig())


class TestByteIdentitySerial:
    def test_batch_report_identical(self, result_2018, observed):
        assert observed.report() == result_2018.report()

    def test_result_carries_snapshot(self, observed):
        snapshot = observed.telemetry
        assert snapshot is not None
        assert snapshot.metrics.counters["prober.q1_wire_sent"] > 0
        assert snapshot.heartbeats
        assert snapshot.spans

    def test_no_telemetry_leaves_field_none(self, result_2018):
        assert result_2018.telemetry is None

    def test_counters_agree_with_capture_ledger(self, observed):
        counters = observed.telemetry.metrics.counters
        capture = observed.capture
        assert counters["prober.q1_targets"] == capture.q1_sent
        # With the fast=True responder-hint accelerator, probes to
        # non-responders are accounted but never materialized on the
        # wire, so the wire counter sits between the responder count
        # and the walked-target count (exact equality is pinned by
        # test_unaccelerated_wire_counts_are_exact).
        assert (
            capture.r2_count
            <= counters["prober.q1_wire_sent"]
            <= capture.q1_sent + capture.retries_sent
        )
        assert counters["prober.r2_delivered"] == capture.r2_count
        assert counters["auth.queries_served"] == len(observed.query_log)
        assert counters["prober.clusters_installed"] == (
            capture.cluster_stats.clusters_created
        )
        assert counters["auth.zone_installs"] == (
            capture.cluster_stats.clusters_created
        )

    def test_unaccelerated_wire_counts_are_exact(self):
        # fast=False materializes every walked probe, so the sink's
        # wire counter must equal the ledger exactly.
        config = dataclasses.replace(CONFIG, scale=65536, seed=3, fast=False)
        result = Campaign(config).run(telemetry=TelemetryConfig())
        counters = result.telemetry.metrics.counters
        capture = result.capture
        assert counters["prober.q1_wire_sent"] == (
            capture.q1_sent + capture.retries_sent
        )
        assert counters["prober.r2_delivered"] == capture.r2_count

    def test_latency_histogram_covers_joined_flows(self, observed):
        histogram = observed.telemetry.metrics.histograms[
            "prober.q1_to_r2_latency_s"
        ]
        # Every delivered R2 whose qname parsed closes a latency pair.
        assert histogram["count"] > 0
        assert histogram["count"] <= observed.capture.r2_count
        assert histogram["min"] > 0.0

    def test_span_tree_covers_campaign_phases(self, observed):
        spans = observed.telemetry.spans
        by_name = {span["name"]: span for span in spans}
        for name in ("campaign", "universe_walk", "deploy", "scan",
                     "merge_and_analyze"):
            assert name in by_name, f"missing span {name!r}"
        campaign = by_name["campaign"]
        assert campaign["parent"] is None
        assert by_name["scan"]["parent"] == campaign["span_id"]
        assert by_name["scan"]["end_sim"] >= by_name["scan"]["start_sim"]

    def test_heartbeats_monotone_and_progressing(self, observed):
        beats = observed.telemetry.heartbeats
        times = [beat["sim_time"] for beat in beats]
        assert times == sorted(times)
        q1 = [beat["q1_wire_sent"] for beat in beats]
        assert q1 == sorted(q1)
        assert q1[-1] > 0
        assert "scheduler.pending_events" in beats[0]["gauges"]


class TestByteIdentitySharded:
    @pytest.fixture(scope="class")
    def sharded_config(self):
        return dataclasses.replace(
            CONFIG, workers=4, fault_profile="hostile",
            mode="stream", drop_captures=True,
        )

    @pytest.fixture(scope="class")
    def plain(self, sharded_config):
        return run_sharded(sharded_config, parallelism="inline")

    @pytest.fixture(scope="class")
    def traced(self, sharded_config):
        return run_sharded(
            sharded_config, parallelism="inline",
            telemetry=TelemetryConfig(),
        )

    def test_stream_sharded_report_identical(self, plain, traced):
        assert traced.report() == plain.report()

    def test_shard_snapshots_merge_into_campaign_totals(self, traced):
        counters = traced.telemetry.metrics.counters
        assert counters["campaign.shards_completed"] == 4
        assert counters["prober.q1_wire_sent"] > 0
        assert counters["stream.flows_opened"] > 0
        assert counters["fault.latency_spike_windows"] > 0

    def test_heartbeats_tagged_by_shard(self, traced):
        shards = {beat.get("shard") for beat in traced.telemetry.heartbeats}
        assert shards == {0, 1, 2, 3}

    def test_shard_spans_reparented_under_execution(self, traced):
        spans = traced.telemetry.spans
        by_id = {span["span_id"]: span for span in spans}
        shard_spans = [span for span in spans if span["name"] == "shard"]
        assert len(shard_spans) == 4
        for span in shard_spans:
            assert by_id[span["parent"]]["name"] == "shard_execution"
            assert "shard" in span["meta"]

    def test_telemetry_config_stays_out_of_fingerprint(self):
        from repro.core.shard import checkpoint_fingerprint

        fingerprint = checkpoint_fingerprint(CONFIG)
        assert "telemetry" not in fingerprint


class TestResumeCompat:
    def test_resume_merges_checkpointed_snapshots(self, tmp_path):
        config = dataclasses.replace(
            CONFIG, scale=65536, seed=3, workers=4
        )
        checkpoint_dir = tmp_path / "ckpt"
        run_sharded(
            config, parallelism="inline", checkpoint_dir=checkpoint_dir,
            telemetry=TelemetryConfig(),
        )
        resumed = run_sharded(
            config, parallelism="inline", checkpoint_dir=checkpoint_dir,
            resume=True, telemetry=TelemetryConfig(),
        )
        counters = resumed.telemetry.metrics.counters
        assert counters["campaign.shards_completed"] == 4
        assert counters["prober.q1_wire_sent"] > 0

    def test_pre_telemetry_checkpoints_resume_cleanly(self, tmp_path):
        # A checkpoint written before the telemetry field existed
        # unpickles without the attribute; resume must tolerate it.
        import pickle

        from repro.datasets.store import _shard_filename

        config = dataclasses.replace(
            CONFIG, scale=65536, seed=3, workers=4
        )
        checkpoint_dir = tmp_path / "ckpt"
        run_sharded(
            config, parallelism="inline", checkpoint_dir=checkpoint_dir,
        )
        for index in range(4):
            path = checkpoint_dir / _shard_filename(index)
            outcome = pickle.loads(path.read_bytes())
            if hasattr(outcome, "telemetry"):
                del outcome.telemetry
            path.write_bytes(pickle.dumps(outcome))
        resumed = run_sharded(
            config, parallelism="inline", checkpoint_dir=checkpoint_dir,
            resume=True, telemetry=TelemetryConfig(),
        )
        assert resumed.telemetry is not None
        assert (
            resumed.telemetry.metrics.counters["campaign.shards_completed"]
            == 4
        )


class TestFlightDump:
    def test_chaos_killed_shard_dumps_flight_recorder(
        self, tmp_path, monkeypatch
    ):
        from repro.core.shard import CHAOS_RAISE_ENV

        monkeypatch.setenv(CHAOS_RAISE_ENV, "1:1")
        config = dataclasses.replace(
            CONFIG, scale=65536, seed=3, workers=4, max_shard_retries=2
        )
        dump_dir = tmp_path / "post-mortem"
        result = run_sharded(
            config, parallelism="inline",
            telemetry=TelemetryConfig(flight_dump_dir=str(dump_dir)),
        )
        assert result.degraded is None  # retry recovered the shard
        dumps = sorted(dump_dir.glob("flight_shard_*.json"))
        assert dumps, "chaos kill produced no flight dump"
        document = json.loads(dumps[0].read_text())
        assert document["capacity"] > 0
        assert "reason" in document


class TestCliExport:
    def test_scan_writes_metrics_and_trace(self, tmp_path, capsys):
        from repro.cli.main import main

        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        code = main([
            "scan", "--scale", "65536", "--seed", "3", "--workers", "2",
            "--metrics-out", str(metrics_path),
            "--trace-out", str(trace_path),
        ])
        assert code == 0
        metrics = json.loads(metrics_path.read_text())
        assert metrics["counters"]["prober.q1_wire_sent"] > 0
        assert metrics["heartbeats"]
        trace = json.loads(trace_path.read_text())
        names = {span["name"] for span in trace["spans"]}
        assert "shard_execution" in names
        out = capsys.readouterr().out
        assert "metrics" in out.lower()

    def test_scan_without_flags_runs_untelemetered(self, capsys):
        from repro.cli.main import main

        code = main(["scan", "--scale", "262144", "--seed", "3"])
        assert code == 0
