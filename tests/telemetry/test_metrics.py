"""Metric primitives: counters, gauges, histograms, mergeable snapshots."""

import math
import pickle

import pytest

from repro.telemetry.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42


class TestGauge:
    def test_tracks_last_min_max_samples(self):
        gauge = Gauge()
        assert gauge.samples == 0
        for value in (3.0, -1.0, 7.0):
            gauge.set(value)
        assert gauge.last == 7.0
        assert gauge.min == -1.0
        assert gauge.max == 7.0
        assert gauge.samples == 3

    def test_unsampled_extrema_are_infinite(self):
        gauge = Gauge()
        assert gauge.min == math.inf
        assert gauge.max == -math.inf


class TestHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=())
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_observations_land_in_buckets(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 3.0, 100.0):
            histogram.observe(value)
        # Bounds are inclusive upper edges; the last bucket is overflow.
        assert histogram.counts == [2, 1, 1, 1]
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(106.0)
        assert histogram.min == 0.5
        assert histogram.max == 100.0

    def test_quantile_bounds_checked(self):
        histogram = Histogram(bounds=(1.0,))
        with pytest.raises(ValueError):
            histogram.quantile(1.5)
        assert histogram.quantile(0.5) == 0.0  # empty histogram

    def test_quantile_monotone(self):
        histogram = Histogram(bounds=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 2.5, 3.0, 5.0, 7.0, 9.0):
            histogram.observe(value)
        quantiles = [histogram.quantile(q) for q in (0.1, 0.5, 0.9, 1.0)]
        assert quantiles == sorted(quantiles)
        assert quantiles[-1] <= histogram.max


class TestMetricsSnapshotMerge:
    def _snapshot(self, q1: int, latencies: list[float]) -> MetricsSnapshot:
        registry = MetricsRegistry()
        registry.counter("prober.q1").inc(q1)
        registry.gauge("queue.depth").set(float(q1))
        histogram = registry.histogram("lat", bounds=(1.0, 2.0))
        for value in latencies:
            histogram.observe(value)
        return registry.snapshot()

    def test_counters_add(self):
        merged = self._snapshot(10, [])
        merged.merge(self._snapshot(32, []))
        assert merged.counters["prober.q1"] == 42

    def test_gauges_combine_extrema(self):
        merged = self._snapshot(10, [])
        merged.merge(self._snapshot(32, []))
        gauge = merged.gauges["queue.depth"]
        assert gauge["min"] == 10.0
        assert gauge["max"] == 32.0
        assert gauge["last"] == 32.0
        assert gauge["samples"] == 2

    def test_histogram_buckets_add(self):
        merged = self._snapshot(1, [0.5, 1.5])
        merged.merge(self._snapshot(1, [0.7, 5.0]))
        histogram = merged.histograms["lat"]
        assert histogram["counts"] == [2, 1, 1]
        assert histogram["count"] == 4
        assert histogram["min"] == 0.5
        assert histogram["max"] == 5.0

    def test_merge_is_associative(self):
        parts = [self._snapshot(n, [float(n)]) for n in (1, 2, 3)]
        left = self._snapshot(0, [])
        for part in parts:
            left.merge(part)
        right_tail = self._snapshot(0, [])
        right_tail.merge(parts[1])
        right_tail.merge(parts[2])
        right = parts[0]
        right.merge(right_tail)
        assert left.counters == right.counters
        assert left.histograms == right.histograms

    def test_mismatched_histogram_bounds_raise(self):
        registry = MetricsRegistry()
        registry.histogram("lat", bounds=(1.0, 3.0)).observe(0.5)
        other = registry.snapshot()
        merged = self._snapshot(1, [0.5])
        with pytest.raises(ValueError, match="boundaries differ"):
            merged.merge(other)

    def test_merge_into_empty_copies(self):
        merged = MetricsSnapshot()
        part = self._snapshot(7, [0.5])
        merged.merge(part)
        assert merged.counters == part.counters
        assert merged.histograms == part.histograms
        # A copy, not an alias: mutating the merged side must not leak.
        merged.histograms["lat"]["counts"][0] += 1
        assert part.histograms["lat"]["counts"][0] == 1

    def test_snapshot_pickles(self):
        snapshot = self._snapshot(7, [0.5])
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.counters == snapshot.counters
        assert clone.histograms == snapshot.histograms


class TestToDict:
    def test_json_ready_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc()
        registry.gauge("g")  # never set: infinite extrema
        document = registry.snapshot().to_dict()
        assert list(document["counters"]) == ["a", "b"]
        # Infinities are unrepresentable in JSON; rendered as None.
        assert document["gauges"]["g"]["min"] is None
        assert document["gauges"]["g"]["max"] is None


class TestMetricsRegistry:
    def test_metrics_are_memoized_by_name(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("x") is registry.gauge("x")
        assert registry.histogram("x") is registry.histogram("x")

    def test_default_latency_bounds_increase(self):
        assert all(
            a < b
            for a, b in zip(DEFAULT_LATENCY_BOUNDS, DEFAULT_LATENCY_BOUNDS[1:])
        )
