"""Span tracing: nesting, elapsed-interval spans, shard adoption."""

from repro.telemetry.tracing import Tracer


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now


class TestSpanNesting:
    def test_children_reference_parents(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        with tracer.span("campaign") as campaign:
            clock.now = 1.0
            with tracer.span("scan", year=2018) as scan:
                clock.now = 5.0
            with tracer.span("merge"):
                clock.now = 6.0
        assert campaign.parent_id is None
        assert scan.parent_id == campaign.span_id
        assert scan.meta == {"year": 2018}
        assert scan.start_sim == 1.0 and scan.end_sim == 5.0
        assert scan.sim_duration == 4.0
        assert campaign.end_sim == 6.0
        assert campaign.wall_duration >= scan.wall_duration >= 0.0

    def test_siblings_after_close_share_parent(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        root, a, b = tracer.spans
        assert a.parent_id == root.span_id
        assert b.parent_id == root.span_id

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        try:
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        (span,) = tracer.spans
        assert span.end_sim is not None
        assert tracer._stack == []

    def test_default_clock_is_zero(self):
        tracer = Tracer()
        with tracer.span("x") as span:
            pass
        assert span.start_sim == 0.0 and span.end_sim == 0.0


class TestAddSpan:
    def test_records_closed_simulated_interval(self):
        tracer = Tracer()
        with tracer.span("scan"):
            record = tracer.add_span("fault:spike", 120.0, 135.0, factor=4.0)
        assert record.start_sim == 120.0
        assert record.end_sim == 135.0
        assert record.meta == {"factor": 4.0}
        # The interval existed in simulated time only.
        assert record.wall_duration == 0.0
        assert record.parent_id == tracer.spans[0].span_id


class TestAdopt:
    def _shard_spans(self):
        clock = FakeClock()
        shard = Tracer(clock)
        with shard.span("shard", index=1):
            clock.now = 3.0
            with shard.span("scan"):
                clock.now = 9.0
        return shard.export()

    def test_renumbers_and_reparents(self):
        parent = Tracer()
        with parent.span("campaign"):
            with parent.span("shard_execution") as holder:
                parent.adopt(self._shard_spans(), shard=1)
        spans = {span.name: span for span in parent.spans}
        shard_root = spans["shard"]
        shard_scan = spans["scan"]
        # Roots of the adopted forest hang off the open span.
        assert shard_root.parent_id == holder.span_id
        assert shard_scan.parent_id == shard_root.span_id
        assert shard_root.meta == {"index": 1, "shard": 1}
        # Renumbering keeps ids unique across the whole trace.
        ids = [span.span_id for span in parent.spans]
        assert len(ids) == len(set(ids))

    def test_adopting_twice_never_collides(self):
        parent = Tracer()
        with parent.span("campaign"):
            parent.adopt(self._shard_spans(), shard=0)
            parent.adopt(self._shard_spans(), shard=1)
        ids = [span.span_id for span in parent.spans]
        assert len(ids) == len(set(ids))
        with parent.span("after"):
            pass
        ids = [span.span_id for span in parent.spans]
        assert len(ids) == len(set(ids))

    def test_export_round_trips_through_dicts(self):
        exported = self._shard_spans()
        parent = Tracer()
        parent.adopt(exported)
        assert [span.name for span in parent.spans] == ["shard", "scan"]
        assert parent.spans[0].start_sim == 0.0
        assert parent.spans[1].end_sim == 9.0
