"""version.bind fingerprinting tests."""

import pytest

from repro.core import Campaign, CampaignConfig
from repro.dnslib.chaos import (
    VERSION_BIND,
    extract_banner,
    is_version_bind_query,
    version_bind_response,
)
from repro.dnslib.constants import DnsClass, QueryType, Rcode
from repro.dnslib.message import make_query
from repro.dnslib.wire import decode_message
from repro.fingerprint import (
    SOFTWARE_MIX,
    SoftwareIdentity,
    VersionScanner,
    assign_software,
    classify_banner,
    render_census,
    take_census,
)
from repro.fingerprint.identities import vulnerabilities_for


def version_query(qclass=DnsClass.CH, qtype=QueryType.TXT, qname=VERSION_BIND):
    return make_query(qname, qtype=qtype, qclass=qclass, recursion_desired=False)


class TestChaosHelpers:
    def test_detects_version_bind(self):
        assert is_version_bind_query(version_query())
        assert is_version_bind_query(version_query(qtype=QueryType.ANY))

    def test_rejects_wrong_class_or_name(self):
        assert not is_version_bind_query(version_query(qclass=DnsClass.IN))
        assert not is_version_bind_query(version_query(qname="version.server"))
        assert not is_version_bind_query(version_query(qtype=QueryType.A))

    def test_banner_roundtrip(self):
        query = version_query()
        wire = version_bind_response(query, "dnsmasq-2.76")
        response = decode_message(wire)
        assert extract_banner(response) == "dnsmasq-2.76"
        assert response.header.flags.aa
        assert response.answers[0].rclass == DnsClass.CH

    def test_hidden_banner_refused(self):
        wire = version_bind_response(version_query(), None)
        response = decode_message(wire)
        assert response.rcode == Rcode.REFUSED
        assert extract_banner(response) is None


class TestIdentities:
    def test_banner_format(self):
        bind = SoftwareIdentity("ISC", "bind", "9.11.4-P2")
        assert bind.banner == "9.11.4-P2"
        dnsmasq = SoftwareIdentity("Thekelleys", "dnsmasq", "2.76")
        assert dnsmasq.banner == "dnsmasq-2.76"
        hidden = SoftwareIdentity("unknown", "hidden", "", hidden=True)
        assert hidden.banner is None

    def test_classify_banner(self):
        assert classify_banner("dnsmasq-2.76") == ("Thekelleys", "dnsmasq")
        assert classify_banner("9.9.4-RedHat-9.9.4-61.el7") == ("ISC", "bind")
        assert classify_banner("Microsoft DNS 6.1.7601")[0] == "Microsoft"
        assert classify_banner(None) == ("unknown", "hidden")

    def test_vulnerabilities_longest_prefix(self):
        assert "CVE-2017-14491" in vulnerabilities_for("dnsmasq-2.76")
        assert vulnerabilities_for("9.9.4-RedHat-9.9.4-61.el7") == (
            "CVE-2015-5477", "CVE-2016-2776",
        )
        assert vulnerabilities_for("dnsmasq-2.99") == ()
        assert vulnerabilities_for(None) == ()

    def test_mix_weights_positive(self):
        assert all(weight > 0 for _, weight in SOFTWARE_MIX)
        assert any(identity.hidden for identity, _ in SOFTWARE_MIX)


@pytest.fixture(scope="module")
def campaign():
    return Campaign(CampaignConfig(year=2018, scale=16384, seed=9)).run()


class TestScannerOverCampaign:
    def test_assignment_deterministic(self, campaign):
        first = assign_software(campaign.population, seed=1)
        second = assign_software(campaign.population, seed=1)
        assert first == second

    def test_every_host_assigned(self, campaign):
        assert set(campaign.software_map) == campaign.population.address_set()

    def test_scan_recovers_banners(self, campaign):
        targets = sorted(campaign.population.address_set())
        scanner = VersionScanner(campaign.network)
        result = scanner.scan(targets)
        # Every host answers version.bind (banner or REFUSED).
        assert result.responded == len(targets)
        assert result.silent == []
        for ip, banner in result.banners.items():
            assert campaign.software_map[ip].banner == banner
        for ip in result.refused:
            assert campaign.software_map[ip].banner is None

    def test_census_shape(self, campaign):
        targets = sorted(campaign.population.address_set())
        result = VersionScanner(
            campaign.network, scanner_ip="132.170.3.16", source_port=31400
        ).scan(targets)
        census = take_census(result, total_targets=len(targets))
        assert census.revealing + census.refused == len(targets)
        # dnsmasq is the dominant revealed product in the mix.
        assert max(census.by_product, key=census.by_product.get) == "dnsmasq"
        # Old versions dominate: a substantial vulnerable share.
        assert census.vulnerable_share > 0.3
        assert 0.1 < census.hiding_rate < 0.35

    def test_render_census(self, campaign):
        targets = sorted(campaign.population.address_set())[:50]
        result = VersionScanner(
            campaign.network, scanner_ip="132.170.3.17", source_port=31401
        ).scan(targets)
        census = take_census(result, total_targets=len(targets))
        text = render_census(census)
        assert "version.bind census" in text
        assert "product distribution" in text

    def test_fingerprinting_can_be_disabled(self):
        result = Campaign(
            CampaignConfig(year=2018, scale=65536, seed=2, fingerprinting=False)
        ).run()
        assert result.software_map == {}
        targets = sorted(result.population.address_set())
        scan = VersionScanner(result.network).scan(targets)
        assert scan.banners == {}
        assert len(scan.refused) == len(targets)
