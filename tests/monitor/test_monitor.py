"""Continuous-monitoring tests: churn, snapshots, diffs, trends."""

import pytest

from repro.core import Campaign, CampaignConfig
from repro.monitor import (
    ChurnModel,
    ContinuousMonitor,
    Snapshot,
    diff_snapshots,
    evolve_population,
    snapshot_from_result,
)
from repro.monitor.snapshot import ResolverRecord

SCALE = 16384


@pytest.fixture(scope="module")
def base_result():
    return Campaign(CampaignConfig(year=2018, scale=SCALE, seed=21)).run()


@pytest.fixture(scope="module")
def base_universe():
    return Campaign(CampaignConfig(year=2018, scale=SCALE, seed=21)).build_universe()


def record(ip="1.1.1.1", ra=True, aa=False, rcode=0, has_answer=True,
           correct=True, malicious=False):
    return ResolverRecord(ip, ra, aa, rcode, has_answer, correct, malicious)


class TestChurnModel:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ChurnModel(death_rate=1.5)
        with pytest.raises(ValueError):
            ChurnModel(birth_rate=-0.1)

    def test_evolution_changes_membership(self, base_result, base_universe):
        churn = ChurnModel(death_rate=0.2, birth_rate=0.1)
        evolved = evolve_population(
            base_result.population, churn, seed=1, universe=base_universe
        )
        before = base_result.population.address_set()
        after = evolved.address_set()
        assert after != before
        assert len(before - after) > 0   # deaths
        assert len(after - before) > 0   # births

    def test_zero_churn_is_identity_membership(self, base_result, base_universe):
        churn = ChurnModel(death_rate=0.0, birth_rate=0.0,
                           behavior_change_rate=0.0)
        evolved = evolve_population(
            base_result.population, churn, seed=1, universe=base_universe
        )
        assert evolved.address_set() == base_result.population.address_set()

    def test_behavior_swap_preserves_marginals(self, base_result, base_universe):
        churn = ChurnModel(death_rate=0.0, birth_rate=0.0,
                           behavior_change_rate=0.3)
        evolved = evolve_population(
            base_result.population, churn, seed=2, universe=base_universe
        )
        from collections import Counter

        before = Counter(a.cell_name for a in base_result.population.assignments)
        after = Counter(a.cell_name for a in evolved.assignments)
        assert before == after

    def test_births_live_in_universe(self, base_result, base_universe):
        from repro.netsim.ipv4 import ip_to_int

        churn = ChurnModel(death_rate=0.0, birth_rate=0.2)
        evolved = evolve_population(
            base_result.population, churn, seed=3, universe=base_universe
        )
        universe_set = set(base_universe)
        newcomers = evolved.address_set() - base_result.population.address_set()
        assert newcomers
        for ip in newcomers:
            assert ip_to_int(ip) in universe_set

    def test_geo_rebuilt_for_all_hosts(self, base_result, base_universe):
        churn = ChurnModel(death_rate=0.1, birth_rate=0.1)
        evolved = evolve_population(
            base_result.population, churn, seed=4, universe=base_universe
        )
        for assignment in evolved.assignments:
            assert evolved.geo.country_of(assignment.ip) == assignment.country


class TestSnapshot:
    def test_from_result(self, base_result):
        snapshot = snapshot_from_result(base_result)
        assert len(snapshot) == base_result.flow_set.r2_count
        assert snapshot.open_resolvers == base_result.estimates.ra_and_correct
        assert snapshot.incorrect_answers == base_result.correctness.incorrect
        assert snapshot.malicious_resolvers == base_result.malicious_flags.total

    def test_strict_criterion(self):
        assert record(ra=True, correct=True).open_by_strict_criterion
        assert not record(ra=False, correct=True).open_by_strict_criterion
        assert not record(ra=True, correct=False).open_by_strict_criterion


class TestDiff:
    def make_snapshots(self):
        before = Snapshot("t0", {
            "1.1.1.1": record("1.1.1.1"),
            "2.2.2.2": record("2.2.2.2", malicious=False, correct=False),
            "3.3.3.3": record("3.3.3.3"),
        })
        after = Snapshot("t1", {
            "1.1.1.1": record("1.1.1.1"),                       # unchanged
            "2.2.2.2": record("2.2.2.2", correct=False,
                              malicious=True),                  # turned bad
            "4.4.4.4": record("4.4.4.4"),                       # appeared
        })
        return before, after

    def test_diff_categories(self):
        before, after = self.make_snapshots()
        diff = diff_snapshots(before, after)
        assert diff.appeared == {"4.4.4.4"}
        assert diff.disappeared == {"3.3.3.3"}
        assert diff.behavior_changed == {"2.2.2.2"}
        assert diff.unchanged == {"1.1.1.1"}
        assert diff.turned_malicious == {"2.2.2.2"}
        assert diff.cleaned_up == set()

    def test_churn_rate(self):
        before, after = self.make_snapshots()
        diff = diff_snapshots(before, after)
        assert diff.churn_rate == pytest.approx(2 / 4)

    def test_summary_text(self):
        before, after = self.make_snapshots()
        text = diff_snapshots(before, after).summary()
        assert "+1 new" in text
        assert "-1 gone" in text
        assert "1 turned malicious" in text


class TestContinuousMonitor:
    def test_three_epochs(self):
        monitor = ContinuousMonitor(
            year=2018, scale=32768, seed=5,
            churn=ChurnModel(death_rate=0.1, birth_rate=0.08,
                             behavior_change_rate=0.05),
        )
        trend = monitor.run(epochs=3)
        assert len(monitor.epochs) == 3
        assert monitor.epochs[0].diff is None
        assert monitor.epochs[1].diff is not None
        assert len(trend.open_series) == 3
        assert trend.mean_churn_rate > 0.0
        assert trend.open_trend in ("rising", "falling", "flat")
        assert "open resolvers" in trend.summary()

    def test_requires_epochs(self):
        monitor = ContinuousMonitor(scale=65536)
        with pytest.raises(ValueError):
            monitor.run(epochs=0)
        with pytest.raises(RuntimeError):
            monitor.trend()
