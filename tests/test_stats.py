"""Tests for the shared table structures."""

import pytest

from repro.dnslib.constants import Rcode
from repro.stats import (
    CorrectnessTable,
    FlagRow,
    FlagTable,
    MaliciousCategoryRow,
    MaliciousCategoryTable,
    MaliciousFlagTable,
    OpenResolverEstimates,
    ProbeSummary,
    RcodeTable,
)


class TestCorrectnessTable:
    def test_derived_fields(self):
        table = CorrectnessTable(r2=100, without_answer=40, correct=50, incorrect=10)
        assert table.with_answer == 60
        assert table.err == pytest.approx(100 * 10 / 60)

    def test_err_zero_when_no_answers(self):
        table = CorrectnessTable(r2=5, without_answer=5, correct=0, incorrect=0)
        assert table.err == 0.0


class TestFlagTable:
    def test_row_math(self):
        row = FlagRow(without_answer=10, correct=5, incorrect=15)
        assert row.with_answer == 20
        assert row.total == 30
        assert row.err == 75.0

    def test_table_total(self):
        table = FlagTable(
            flag="RA",
            zero=FlagRow(1, 2, 3),
            one=FlagRow(4, 5, 6),
        )
        assert table.total == 21


class TestRcodeTable:
    def test_totals(self):
        table = RcodeTable(
            with_answer={0: 90, 2: 10},
            without_answer={0: 5, 5: 100},
        )
        assert table.total_with == 100
        assert table.total_without == 105
        assert table.row_total(0) == 95
        assert table.row_total(5) == 100
        assert table.nonzero_with_answer() == 10

    def test_missing_rcode_is_zero(self):
        table = RcodeTable(with_answer={}, without_answer={})
        assert table.row_total(Rcode.REFUSED) == 0


class TestMaliciousCategoryTable:
    def make(self):
        return MaliciousCategoryTable(
            rows=(
                MaliciousCategoryRow("Malware", unique_ips=3, r2=90),
                MaliciousCategoryRow("Phishing", unique_ips=1, r2=10),
            )
        )

    def test_totals_and_shares(self):
        table = self.make()
        assert table.total_ips == 4
        assert table.total_r2 == 100
        assert table.ip_share("Malware") == 75.0
        assert table.r2_share("Phishing") == 10.0

    def test_unknown_category_raises(self):
        with pytest.raises(KeyError):
            self.make().ip_share("Botnet")


class TestMaliciousFlagTable:
    def test_shares(self):
        table = MaliciousFlagTable(ra0=75, ra1=25, aa0=30, aa1=70)
        assert table.total == 100
        assert table.ra0_share == 75.0
        assert table.ra1_share == 25.0
        assert table.aa1_share == 70.0

    def test_empty(self):
        table = MaliciousFlagTable(0, 0, 0, 0)
        assert table.ra0_share == 0.0


class TestProbeSummary:
    def test_shares(self):
        summary = ProbeSummary(
            year=2018, duration_seconds=38_100, q1=1000, q2_r1=35, r2=17
        )
        assert summary.q2_share == 3.5
        assert summary.r2_share == 1.7

    def test_duration_text_days(self):
        summary = ProbeSummary(2013, 7 * 86400 + 5 * 3600, 1, 1, 1)
        assert summary.duration_text == "7d 5h"

    def test_duration_text_hours(self):
        summary = ProbeSummary(2018, 10 * 3600 + 35 * 60, 1, 1, 1)
        assert summary.duration_text == "10h 35m"

    def test_duration_text_minutes(self):
        summary = ProbeSummary(2018, 125, 1, 1, 1)
        assert summary.duration_text == "2m"

    def test_zero_q1(self):
        summary = ProbeSummary(2018, 0, 0, 0, 0)
        assert summary.q2_share == 0.0


class TestEstimates:
    def test_fields(self):
        est = OpenResolverEstimates(
            ra_flag_only=3, ra_and_correct=1, correct_any_flag=2
        )
        assert est.ra_flag_only >= est.ra_and_correct
