"""AS-level malicious-resolver distribution tests (section IV-C2)."""

import pytest

from repro.analysis.malicious import measure_asn_distribution
from repro.core import Campaign, CampaignConfig
from repro.threatintel.cymon import CymonDatabase, ThreatCategory
from repro.threatintel.geo import GeoDatabase
from tests.analysis.test_analyzers import TRUTH, wrong_view


class TestAsnAnalyzer:
    def test_counts_by_as(self):
        cymon = CymonDatabase()
        cymon.add_reports("6.6.6.6", ThreatCategory.MALWARE, 2)
        geo = GeoDatabase()
        geo.add("1.0.0.0/8", "US", asn=64512, as_name="AS64512 US Carrier 1")
        geo.add("2.0.0.0/8", "US", asn=64513, as_name="AS64513 US Carrier 2")
        views = [
            wrong_view("6.6.6.6", src="1.1.1.1"),
            wrong_view("6.6.6.6", src="1.1.1.2"),
            wrong_view("6.6.6.6", src="2.1.1.1"),
            wrong_view("6.6.6.6", src="9.9.9.9"),  # unregistered space
        ]
        distribution = measure_asn_distribution(views, TRUTH, cymon, geo)
        assert distribution["AS64512 US Carrier 1"] == 2
        assert distribution["AS64513 US Carrier 2"] == 1
        assert distribution["(unregistered)"] == 1

    def test_empty_when_no_malicious(self):
        assert measure_asn_distribution([], TRUTH, CymonDatabase(), GeoDatabase()) == {}


class TestPopulationAsns:
    @pytest.fixture(scope="class")
    def result(self):
        return Campaign(CampaignConfig(year=2018, scale=8192, seed=17)).run()

    def test_every_host_has_an_asn(self, result):
        for assignment in result.population.assignments:
            assert assignment.asn >= 64_512
            assert assignment.country in assignment.as_name

    def test_geo_lookup_carries_asn(self, result):
        assignment = result.population.assignments[0]
        entry = result.population.geo.lookup(assignment.ip)
        assert entry.asn == assignment.asn
        assert entry.as_name == assignment.as_name

    def test_campaign_asn_distribution(self, result):
        distribution = measure_asn_distribution(
            result.flow_set.views,
            result.hierarchy.auth.ip,
            result.population.cymon,
            result.population.geo,
        )
        assert sum(distribution.values()) == result.malicious_flags.total
        if distribution:
            # Skewed carrier pick: the head AS dominates its country.
            head = max(distribution.values())
            assert head >= 1
