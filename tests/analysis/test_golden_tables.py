"""Golden table pins: the paper's headline shapes, frozen per seed.

Two layers of protection against silent analysis drift:

- *Shape pins* over the shared two-year worlds (DESIGN.md §4's
  reproduction criterion): Err(RA0) ≫ Err(RA1), the AA=1 error rate
  roughly doubling 2013→2018, malicious R2 roughly doubling while the
  open-resolver count drops ~4×.
- *Byte pins* of rendered tables at a pinned (seed, scale, year): any
  change to sampling, behavior assignment, joining, aggregation or
  rendering shows up as a diff here. Deliberate changes must update
  the goldens consciously.
"""

import pytest

from repro.analysis.report import render_correctness, render_flag_table
from repro.core import Campaign, CampaignConfig

GOLDEN_CONFIG = CampaignConfig(year=2018, scale=65536, seed=3)


@pytest.fixture(scope="module")
def golden_result():
    return Campaign(GOLDEN_CONFIG).run()


class TestShapes2013To2018(object):
    """DESIGN.md §4: shape, not absolute counts."""

    def test_ra0_error_dwarfs_ra1_both_years(self, both_years):
        result_2013, result_2018, _ = both_years
        for result in (result_2013, result_2018):
            ra = result.ra_table
            assert ra.zero.err > 10 * ra.one.err

    def test_aa1_error_rate_roughly_doubles(self, both_years):
        result_2013, result_2018, _ = both_years
        ratio = result_2018.aa_table.one.err / result_2013.aa_table.one.err
        assert 1.5 < ratio < 3.5  # paper: ~40% -> ~79%

    def test_malicious_r2_roughly_doubles(self, both_years):
        result_2013, result_2018, _ = both_years
        before = result_2013.malicious_categories.total_r2
        after = result_2018.malicious_categories.total_r2
        assert after >= 1.5 * before  # paper: 12,874 -> 26,926

    def test_open_resolvers_drop_about_4x(self, both_years):
        result_2013, result_2018, _ = both_years
        ratio = result_2018.estimates.ra_and_correct / (
            result_2013.estimates.ra_and_correct or 1
        )
        assert 0.15 < ratio < 0.35  # paper: ~1/4

    def test_responder_population_shrinks(self, both_years):
        result_2013, result_2018, _ = both_years
        assert result_2013.flow_set.r2_count > 2 * result_2018.flow_set.r2_count


class TestByteGoldens(object):
    """Exact rendered tables at (year=2018, scale=65536, seed=3)."""

    def test_table_iii_correctness(self, golden_result):
        assert render_correctness({2018: golden_result.correctness}) == (
            "Table III\n"
            "+------+----+-----+--------+----------+--------+\n"
            "| Year | R2 | W/O | W_Corr | W_Incorr | Err(%) |\n"
            "+------+----+-----+--------+----------+--------+\n"
            "| 2018 | 99 |  56 |     41 |        2 |  4.651 |\n"
            "+------+----+-----+--------+----------+--------+"
        )

    def test_table_iv_ra_flag(self, golden_result):
        assert render_flag_table({2018: golden_result.ra_table}) == (
            "Table IV\n"
            "+------+------+-----+--------+----------+-------+---------+\n"
            "| Year | Flag | W/O | W_Corr | W_Incorr | Total |  Err(%) |\n"
            "+------+------+-----+--------+----------+-------+---------+\n"
            "| 2018 |  RA0 |  52 |      0 |        1 |    53 | 100.000 |\n"
            "| 2018 |  RA1 |   4 |     41 |        1 |    46 |   2.381 |\n"
            "+------+------+-----+--------+----------+-------+---------+"
        )

    def test_table_v_aa_flag(self, golden_result):
        assert render_flag_table({2018: golden_result.aa_table}) == (
            "Table V\n"
            "+------+------+-----+--------+----------+-------+---------+\n"
            "| Year | Flag | W/O | W_Corr | W_Incorr | Total |  Err(%) |\n"
            "+------+------+-----+--------+----------+-------+---------+\n"
            "| 2018 |  AA0 |  54 |     41 |        0 |    95 |   0.000 |\n"
            "| 2018 |  AA1 |   2 |      0 |        2 |     4 | 100.000 |\n"
            "+------+------+-----+--------+----------+-------+---------+"
        )

    def test_probe_summary_magnitudes(self, golden_result):
        summary = golden_result.probe_summary
        assert (summary.q1, summary.q2_r1, summary.r2) == (56492, 198, 99)
        assert summary.duration_text == "10h 17m"

    def test_goldens_hold_under_sharding(self, golden_result):
        # The byte pins above must be exactly what a sharded run of the
        # same config renders, too.
        import dataclasses

        from repro.core.shard import run_sharded

        sharded = run_sharded(
            dataclasses.replace(GOLDEN_CONFIG, workers=2), parallelism="inline"
        )
        assert sharded.report() == golden_result.report()
