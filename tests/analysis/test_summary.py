"""Probe-summary and extrapolation tests."""

import pytest

from repro.analysis.summary import extrapolate, measure_probe_summary
from repro.prober.capture import FlowSet, ProbeFlow
from repro.prober.probe import ProbeCapture
from repro.prober.subdomain import ClusterStats
from repro.stats import ProbeSummary


def make_capture(q1=1000, duration=10.0):
    return ProbeCapture(
        q1_sent=q1,
        q1_bytes=q1 * 79,
        r2_records=[],
        start_time=0.0,
        end_time=duration,
        cluster_stats=ClusterStats(),
        sent_log={},
    )


def make_flow_set(with_r2=3, q2_each=2, unjoinable=0):
    flows = {}
    for index in range(with_r2):
        flow = ProbeFlow(f"q{index}.example")
        flow.r2 = object()  # presence is all the counters need
        flow.q2_timestamps = [0.1] * q2_each
        flow.r1_count = q2_each
        flows[flow.qname] = flow
    return FlowSet(flows=flows, unjoinable=[object()] * unjoinable)


class TestMeasureProbeSummary:
    def test_counts(self):
        summary = measure_probe_summary(
            2018, make_capture(q1=2000), make_flow_set(with_r2=4, q2_each=3)
        )
        assert summary.year == 2018
        assert summary.q1 == 2000
        assert summary.r2 == 4
        assert summary.q2_r1 == 12
        assert summary.duration_seconds == 10.0

    def test_unjoinable_counted_in_r2(self):
        summary = measure_probe_summary(
            2018, make_capture(), make_flow_set(with_r2=2, unjoinable=3)
        )
        assert summary.r2 == 5


class TestExtrapolate:
    def test_counts_scale_durations_dont(self):
        summary = ProbeSummary(2018, 38_100.0, 1000, 35, 17)
        full = extrapolate(summary, 4096)
        assert full.q1 == 1000 * 4096
        assert full.q2_r1 == 35 * 4096
        assert full.r2 == 17 * 4096
        assert full.duration_seconds == 38_100.0

    def test_shares_invariant_under_extrapolation(self):
        summary = ProbeSummary(2018, 1.0, 1000, 35, 17)
        full = extrapolate(summary, 1024)
        assert full.q2_share == pytest.approx(summary.q2_share)
        assert full.r2_share == pytest.approx(summary.r2_share)
