"""Unit tests for the table analyzers over synthetic R2 views."""

import pytest

from repro.analysis.correctness import is_correct, measure_correctness
from repro.analysis.empty_question import measure_empty_question
from repro.analysis.headers import (
    measure_flag_table,
    measure_open_resolver_estimates,
    measure_rcode_table,
)
from repro.analysis.incorrect import (
    incorrect_views,
    measure_incorrect_forms,
    measure_top_destinations,
)
from repro.analysis.malicious import (
    malicious_views,
    measure_country_distribution,
    measure_malicious_categories,
    measure_malicious_flags,
)
from repro.dnslib.constants import Rcode
from repro.prober.capture import R2View
from repro.threatintel.cymon import CymonDatabase, ThreatCategory
from repro.threatintel.geo import GeoDatabase
from repro.threatintel.whois import WhoisDatabase

TRUTH = "45.76.1.10"


def view(
    answers=(),
    ra=False,
    aa=False,
    rcode=Rcode.NOERROR,
    qname="or000.0000001.ucfsealresearch.net",
    src="1.2.3.4",
    malformed=False,
):
    return R2View(
        timestamp=0.0,
        src_ip=src,
        ra=ra,
        aa=aa,
        rcode=int(rcode),
        has_question=qname is not None,
        qname=qname,
        answers=list(answers),
        malformed_answer=malformed,
    )


def correct_view(**kwargs):
    kwargs.setdefault("ra", True)
    return view(answers=[("ip", TRUTH)], **kwargs)


def wrong_view(address="6.6.6.6", **kwargs):
    return view(answers=[("ip", address)], **kwargs)


class TestCorrectness:
    def test_is_correct(self):
        assert is_correct(correct_view(), TRUTH)
        assert not is_correct(wrong_view(), TRUTH)
        assert not is_correct(view(), TRUTH)
        assert not is_correct(view(malformed=True), TRUTH)

    def test_table(self):
        views = [correct_view(), correct_view(), wrong_view(), view(), view()]
        table = measure_correctness(views, TRUTH)
        assert table.r2 == 5
        assert table.without_answer == 2
        assert table.correct == 2
        assert table.incorrect == 1
        assert table.err == pytest.approx(100.0 / 3)

    def test_malformed_counts_as_incorrect(self):
        table = measure_correctness([view(malformed=True)], TRUTH)
        assert table.incorrect == 1

    def test_url_answer_is_incorrect(self):
        table = measure_correctness([view(answers=[("url", "u.dcoin.co")])], TRUTH)
        assert table.incorrect == 1


class TestFlagTables:
    def test_ra_split(self):
        views = [
            correct_view(),                       # RA1 correct
            wrong_view(ra=True),                  # RA1 incorrect
            wrong_view(ra=False),                 # RA0 incorrect
            view(ra=False, rcode=Rcode.REFUSED),  # RA0 without
        ]
        table = measure_flag_table(views, TRUTH, "ra")
        assert table.one.correct == 1
        assert table.one.incorrect == 1
        assert table.zero.incorrect == 1
        assert table.zero.without_answer == 1
        assert table.total == 4

    def test_aa_split(self):
        views = [wrong_view(aa=True), correct_view(aa=False)]
        table = measure_flag_table(views, TRUTH, "aa")
        assert table.one.incorrect == 1
        assert table.zero.correct == 1

    def test_bad_flag_name(self):
        with pytest.raises(ValueError):
            measure_flag_table([], TRUTH, "tc")

    def test_rcode_table(self):
        views = [
            correct_view(rcode=Rcode.SERVFAIL),
            view(rcode=Rcode.REFUSED),
            view(rcode=Rcode.REFUSED),
            view(rcode=Rcode.NOERROR),
        ]
        table = measure_rcode_table(views)
        assert table.with_answer[Rcode.SERVFAIL] == 1
        assert table.without_answer[Rcode.REFUSED] == 2
        assert table.nonzero_with_answer() == 1
        assert table.row_total(Rcode.REFUSED) == 2

    def test_estimates(self):
        views = [
            correct_view(),                 # ra1 + correct
            wrong_view(ra=True),            # ra1
            correct_view(ra=False),         # correct, ra0
            view(ra=True),                  # ra1, no answer
        ]
        est = measure_open_resolver_estimates(views, TRUTH)
        assert est.ra_flag_only == 3
        assert est.ra_and_correct == 1
        assert est.correct_any_flag == 2


class TestEmptyQuestion:
    def test_detail(self):
        unjoinable = [
            view(qname=None, answers=[("ip", "192.168.5.5")], ra=True),
            view(qname=None, answers=[("ip", "10.1.1.1")], ra=True),
            view(qname=None, answers=[("ip", "198.51.100.9")], ra=True),
            view(qname=None, answers=[("string", "0000")], ra=True),
            view(qname=None, rcode=Rcode.SERVFAIL),
            view(qname=None, rcode=Rcode.REFUSED, aa=True),
        ]
        detail = measure_empty_question(unjoinable)
        assert detail.summary.total == 6
        assert detail.summary.with_answer == 4
        assert detail.summary.ra1 == 4
        assert detail.summary.aa1 == 1
        assert detail.private_answers == 2
        assert detail.private_by_block == {"192.168.0.0/16": 1, "10.0.0.0/8": 1}
        assert detail.garbage_answers == 1
        assert detail.public_answers == 1
        assert detail.summary.rcodes[Rcode.SERVFAIL] == 1

    def test_empty_input(self):
        detail = measure_empty_question([])
        assert detail.summary.total == 0
        assert detail.answer_total == 0


class TestIncorrect:
    def test_incorrect_subset(self):
        views = [correct_view(), wrong_view(), view()]
        assert len(incorrect_views(views, TRUTH)) == 1

    def test_forms_table(self):
        views = [
            wrong_view("6.6.6.6"),
            wrong_view("6.6.6.6"),
            wrong_view("7.7.7.7"),
            view(answers=[("url", "u.dcoin.co")]),
            view(answers=[("string", "wild")]),
            view(malformed=True),
        ]
        table = measure_incorrect_forms(views, TRUTH)
        assert table.counts["ip"] == (3, 2)
        assert table.counts["url"] == (1, 1)
        assert table.counts["string"] == (1, 1)
        assert table.counts["na"] == (1, 0)
        assert table.total_r2 == 6

    def test_top_destinations(self):
        whois = WhoisDatabase()
        whois.add("6.6.6.0/24", "Evil Hosting")
        cymon = CymonDatabase()
        cymon.add_reports("6.6.6.6", ThreatCategory.MALWARE, 3)
        views = (
            [wrong_view("6.6.6.6") for _ in range(5)]
            + [wrong_view("192.168.1.1") for _ in range(3)]
            + [wrong_view("9.9.9.9")]
        )
        rows = measure_top_destinations(views, TRUTH, whois, cymon, top=3)
        assert [row.ip for row in rows] == ["6.6.6.6", "192.168.1.1", "9.9.9.9"]
        assert rows[0].org_name == "Evil Hosting"
        assert rows[0].reported == "Y"
        assert rows[1].org_name == "private network"
        assert rows[1].reported == "N/A"
        assert rows[2].reported == "N"
        assert rows[2].org_name == "(not in whois)"


class TestMalicious:
    def make_world(self):
        cymon = CymonDatabase()
        cymon.add_reports("6.6.6.6", ThreatCategory.MALWARE, 5)
        cymon.add_reports("7.7.7.7", ThreatCategory.PHISHING, 2)
        geo = GeoDatabase()
        geo.add("1.0.0.0/8", "US")
        geo.add("2.0.0.0/8", "IN")
        views = [
            wrong_view("6.6.6.6", src="1.1.1.1", ra=False, aa=True),
            wrong_view("6.6.6.6", src="1.1.1.2", ra=False, aa=True),
            wrong_view("7.7.7.7", src="2.1.1.1", ra=True, aa=False),
            wrong_view("8.8.8.8", src="1.1.1.3"),  # incorrect but unreported
            correct_view(src="1.1.1.4"),
        ]
        return cymon, geo, views

    def test_malicious_subset(self):
        cymon, _, views = self.make_world()
        subset = malicious_views(views, TRUTH, cymon)
        assert len(subset) == 3

    def test_category_table(self):
        cymon, _, views = self.make_world()
        table = measure_malicious_categories(views, TRUTH, cymon)
        assert table.total_ips == 2
        assert table.total_r2 == 3
        assert table._row("Malware").r2 == 2
        assert table._row("Phishing").unique_ips == 1
        assert table.ip_share("Malware") == 50.0
        assert table.r2_share("Malware") == pytest.approx(200.0 / 3)

    def test_flag_table(self):
        cymon, _, views = self.make_world()
        flags = measure_malicious_flags(views, TRUTH, cymon)
        assert flags.total == 3
        assert flags.ra0 == 2
        assert flags.ra1 == 1
        assert flags.aa1 == 2
        assert flags.ra0_share == pytest.approx(200.0 / 3)

    def test_country_distribution(self):
        cymon, geo, views = self.make_world()
        countries = measure_country_distribution(views, TRUTH, cymon, geo)
        assert countries == {"US": 2, "IN": 1}
