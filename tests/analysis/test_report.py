"""Rendering tests: the ASCII tables must carry the paper's structure."""

from repro.dnslib.constants import Rcode
from repro.analysis.report import (
    render_correctness,
    render_country_distribution,
    render_empty_question,
    render_flag_table,
    render_incorrect_forms,
    render_malicious_categories,
    render_malicious_flags,
    render_probe_summary,
    render_rcode_table,
    render_top_destinations,
)
from repro.stats import (
    CorrectnessTable,
    EmptyQuestionSummary,
    FlagRow,
    FlagTable,
    IncorrectFormsTable,
    MaliciousCategoryRow,
    MaliciousCategoryTable,
    MaliciousFlagTable,
    ProbeSummary,
    TopDestinationRow,
)


class TestRenderers:
    def test_probe_summary(self):
        text = render_probe_summary(
            [ProbeSummary(2018, 38_100, 3_702_258_432, 13_049_863, 6_506_258)]
        )
        assert "3,702,258,432" in text
        assert "Q2, R1 (%)" in text
        assert "0.1757" in text  # the paper's R2 share

    def test_correctness_multi_year(self):
        text = render_correctness(
            {
                2013: CorrectnessTable(16_660_123, 4_867_241, 11_671_589, 121_293),
                2018: CorrectnessTable(6_506_258, 3_642_109, 2_752_562, 111_093),
            }
        )
        assert "2013" in text and "2018" in text
        assert "1.029" in text
        assert "3.879" in text

    def test_flag_table_titles(self):
        ra = FlagTable("RA", FlagRow(1, 2, 3), FlagRow(4, 5, 6))
        aa = FlagTable("AA", FlagRow(1, 2, 3), FlagRow(4, 5, 6))
        assert "Table IV" in render_flag_table({2018: ra})
        assert "Table V" in render_flag_table({2018: aa})
        assert "RA0" in render_flag_table({2018: ra})

    def test_rcode_table_columns(self):
        from repro.analysis.report import RCODE_COLUMNS

        table_text = render_rcode_table(
            {2018: __import__("repro.stats", fromlist=["RcodeTable"]).RcodeTable(
                with_answer={0: 10}, without_answer={5: 7}
            )}
        )
        for rcode in RCODE_COLUMNS:
            assert rcode.label in table_text
        assert "NXRRSet" not in table_text  # omitted, as in the paper

    def test_empty_question(self):
        summary = EmptyQuestionSummary(
            total=494, with_answer=19, correct=0, ra1=184, aa1=2,
            rcodes={int(Rcode.SERVFAIL): 301},
        )
        text = render_empty_question(summary)
        assert "494" in text
        assert "ServFail=301" in text

    def test_incorrect_forms(self):
        table = IncorrectFormsTable(
            counts={"ip": (110_790, 15_022), "url": (231, 80),
                    "string": (72, 29), "na": (0, 0)}
        )
        text = render_incorrect_forms({2018: table})
        assert "110,790" in text
        assert "N/A" in text
        assert "Total" in text

    def test_top_destinations(self):
        rows = [
            TopDestinationRow("216.194.64.193", 23_692, "Tera-byte Dot Com", "N"),
            TopDestinationRow("192.168.1.1", 1_014, "private network", "N/A"),
        ]
        text = render_top_destinations(rows)
        assert "216.194.64.193" in text
        assert "N/A" in text
        assert "24,706" in text  # total row

    def test_malicious_categories(self):
        table = MaliciousCategoryTable(
            rows=(
                MaliciousCategoryRow("Malware", 170, 23_189),
                MaliciousCategoryRow("Phishing", 125, 2_878),
            )
        )
        text = render_malicious_categories({2018: table})
        assert "Malware" in text
        assert "23,189" in text

    def test_malicious_flags(self):
        text = render_malicious_flags(
            MaliciousFlagTable(ra0=19_534, ra1=7_392, aa0=7_472, aa1=19_454)
        )
        assert "19,534" in text
        assert "72.5" in text  # the paper's RA0 share

    def test_country_distribution_top_cut(self):
        distribution = {f"C{i}": 100 - i for i in range(15)}
        text = render_country_distribution(distribution, top=10)
        assert "(5 more)" in text

    def test_country_names_resolved(self):
        text = render_country_distribution({"US": 5, "IN": 2})
        assert "United States" in text
        assert "India" in text
