"""Unit behavior of the batch forwarder census and the two renderers."""

import pytest

from repro.analysis.forwarders import measure_forwarders
from repro.analysis.report import render_forwarder_table, render_validation_table
from repro.prober.capture import FlowSet, ProbeFlow, R2View
from repro.stats import ForwarderRow, ForwarderTable, ValidationTable


def _view(qname, src_ip):
    return R2View(
        timestamp=1.0, src_ip=src_ip, ra=True, aa=False, rcode=0,
        has_question=True, qname=qname, answers=[("ip", "10.9.9.9")],
    )


def _flow_set(pairs):
    """pairs: (qname, r2 source or None)."""
    flows = {}
    for qname, src_ip in pairs:
        flows[qname] = ProbeFlow(
            qname=qname,
            r2=_view(qname, src_ip) if src_ip is not None else None,
        )
    return FlowSet(flows=flows, unjoinable=[])


class TestMeasureForwarders:
    def test_split_and_fan_in(self):
        flow_set = _flow_set([
            ("q1", "198.18.0.1"),   # on-path
            ("q2", "192.0.2.1"),    # off-path via upstream .1
            ("q3", "192.0.2.1"),    # off-path via upstream .1
            ("q4", "192.0.2.2"),    # off-path via upstream .2
            ("q5", None),           # unanswered: no bucket
        ])
        targets = {
            "q1": "198.18.0.1", "q2": "198.18.0.2", "q3": "198.18.0.3",
            "q4": "198.18.0.4", "q5": "198.18.0.5",
        }
        table = measure_forwarders(flow_set, targets)
        assert (table.on_path, table.off_path) == (1, 3)
        assert table.joined == 4
        assert table.off_path_share == pytest.approx(75.0)
        assert [(row.upstream, row.fan_in) for row in table.rows] == [
            ("192.0.2.1", 2), ("192.0.2.2", 1),
        ]

    def test_fan_in_counts_distinct_targets_not_answers(self):
        # Two answers for the *same* probed target through one upstream
        # cannot happen per-qname (last R2 wins), but two qnames probed
        # at the same target can: fan-in deduplicates by target.
        flow_set = _flow_set([("q1", "192.0.2.1"), ("q2", "192.0.2.1")])
        targets = {"q1": "198.18.0.7", "q2": "198.18.0.7"}
        table = measure_forwarders(flow_set, targets)
        assert table.rows == (ForwarderRow(upstream="192.0.2.1", fan_in=1),)
        assert table.off_path == 2

    def test_unlogged_qnames_contribute_nothing(self):
        flow_set = _flow_set([("q1", "198.18.0.1")])
        table = measure_forwarders(flow_set, targets={})
        assert (table.on_path, table.off_path) == (0, 0)
        assert table.off_path_share == 0.0

    def test_ties_rank_lexicographically(self):
        flow_set = _flow_set([("q1", "192.0.2.9"), ("q2", "192.0.2.1")])
        targets = {"q1": "198.18.0.1", "q2": "198.18.0.2"}
        table = measure_forwarders(flow_set, targets)
        assert [row.upstream for row in table.rows] == [
            "192.0.2.1", "192.0.2.9",
        ]


class TestRenderers:
    def test_forwarder_table_lists_upstreams(self):
        table = ForwarderTable(
            on_path=96, off_path=3,
            rows=(
                ForwarderRow("192.0.2.3", 2), ForwarderRow("192.0.2.2", 1),
            ),
        )
        text = render_forwarder_table(table)
        assert "Transparent forwarders (off-path R2)" in text
        assert "3.030" in text
        assert "192.0.2.3" in text and "fan-in" in text

    def test_forwarder_table_truncates_long_tails(self):
        rows = tuple(
            ForwarderRow(f"192.0.2.{index}", 1) for index in range(1, 14)
        )
        text = render_forwarder_table(
            ForwarderTable(on_path=0, off_path=13, rows=rows), top=10
        )
        assert "(3 more)" in text

    def test_validation_table_renders_per_year(self):
        text = render_validation_table({
            2018: ValidationTable(
                targets=99, validating=3, non_validating=37, unresponsive=59
            ),
        })
        assert "DNSSEC validation behavior" in text
        assert "| 2018 |" in text
        assert "7.500" in text
