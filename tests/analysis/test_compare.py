"""Temporal comparison logic tests."""

from repro.analysis.compare import TemporalComparison, compare_years
from repro.stats import (
    CorrectnessTable,
    MaliciousCategoryRow,
    MaliciousCategoryTable,
    OpenResolverEstimates,
)


def paper_comparison() -> TemporalComparison:
    """The comparison built from the paper's own full-scale numbers."""
    return compare_years(
        CorrectnessTable(16_660_123, 4_867_241, 11_671_589, 121_293),
        CorrectnessTable(6_506_258, 3_642_109, 2_752_562, 111_093),
        OpenResolverEstimates(12_270_335, 11_505_481, 11_671_589),
        OpenResolverEstimates(3_002_183, 2_748_568, 2_752_562),
        MaliciousCategoryTable(
            rows=(MaliciousCategoryRow("Malware", 100, 12_874),)
        ),
        MaliciousCategoryTable(
            rows=(MaliciousCategoryRow("Malware", 335, 26_926),)
        ),
    )


class TestTemporalComparison:
    def test_paper_headlines_hold(self):
        comparison = paper_comparison()
        assert comparison.open_resolvers_declined
        assert comparison.incorrect_stayed_flat
        assert comparison.malicious_increased

    def test_paper_ratios(self):
        comparison = paper_comparison()
        assert round(comparison.open_resolver_ratio, 2) == 0.24  # ~4x decline
        assert round(comparison.incorrect_ratio, 2) == 0.92      # flat
        assert round(comparison.malicious_r2_ratio, 2) == 2.09   # doubled

    def test_headline_text(self):
        text = paper_comparison().headline()
        assert "11,505,481" in text
        assert "26,926" in text

    def test_zero_denominators(self):
        comparison = TemporalComparison(0, 0, 0, 0, 0, 0, 0, 0)
        assert comparison.open_resolver_ratio == 0.0
        assert comparison.incorrect_ratio == 0.0
        assert comparison.malicious_r2_ratio == 0.0

    def test_flat_band_edges(self):
        comparison = TemporalComparison(1, 1, 100, 74, 1, 1, 1, 1)
        assert not comparison.incorrect_stayed_flat
        comparison = TemporalComparison(1, 1, 100, 80, 1, 1, 1, 1)
        assert comparison.incorrect_stayed_flat
