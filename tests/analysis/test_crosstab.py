"""Cross-tabulation tests."""

import pytest

from repro.analysis.crosstab import ATTRIBUTES, cross_tabulate
from tests.analysis.test_analyzers import correct_view, view, wrong_view


def sample_views():
    return (
        [correct_view() for _ in range(40)]              # RA1 AA0
        + [wrong_view(aa=True) for _ in range(10)]       # RA0 AA1
        + [view(rcode=5) for _ in range(50)]             # RA0 AA0 no answer
    )


class TestCrossTab:
    def test_cells_and_margins(self):
        table = cross_tabulate(sample_views(), "ra", "aa")
        assert table.total == 100
        assert table.cell(True, False) == 40
        assert table.cell(False, True) == 10
        assert table.cell(False, False) == 50
        assert table.row_total(False) == 60
        assert table.column_total(True) == 10

    def test_association_detected(self):
        # RA and AA are strongly dependent in this sample.
        table = cross_tabulate(sample_views(), "ra", "aa")
        # Hand-computed for this table: chi2 ~ 7.41, V ~ 0.27.
        assert table.chi_square() == pytest.approx(7.41, abs=0.1)
        assert table.cramers_v() == pytest.approx(0.272, abs=0.01)

    def test_independence_gives_zero(self):
        views = (
            [view(ra=True, aa=True), view(ra=True, aa=False),
             view(ra=False, aa=True), view(ra=False, aa=False)]
        )
        table = cross_tabulate(views, "ra", "aa")
        assert table.chi_square() == pytest.approx(0.0)
        assert table.cramers_v() == pytest.approx(0.0)

    def test_empty(self):
        table = cross_tabulate([], "ra", "aa")
        assert table.total == 0
        assert table.chi_square() == 0.0
        assert table.cramers_v() == 0.0

    def test_callable_extractors(self):
        table = cross_tabulate(
            sample_views(),
            lambda v: v.rcode,
            "has_answer",
        )
        assert table.cell(5, False) == 50
        assert table.cell(0, True) == 50

    def test_answer_form_attribute(self):
        views = [correct_view(), wrong_view(), view()]
        table = cross_tabulate(views, "answer_form", "ra")
        assert table.row_total("ip") == 2
        assert table.row_total("-") == 1

    def test_render(self):
        text = cross_tabulate(sample_views(), "ra", "aa").render(
            title="observed RA x AA"
        )
        assert "observed RA x AA" in text
        assert "chi2=" in text
        assert "total" in text

    def test_known_attributes_cover_paper_axes(self):
        for name in ("ra", "aa", "rcode", "has_answer", "answer_form"):
            assert name in ATTRIBUTES


class TestOnCampaign:
    def test_observed_joint_matches_calibration(self):
        """The measured RA x AA joint equals the deployed cell counts."""
        from repro.core import Campaign, CampaignConfig

        result = Campaign(
            CampaignConfig(year=2018, scale=16384, seed=29)
        ).run()
        table = cross_tabulate(result.flow_set.views, "ra", "aa")
        expected = {}
        for assignment in result.population.assignments:
            spec = assignment.spec
            if spec.empty_question:
                continue  # unjoinable: not in flow_set.views
            key = (spec.ra, spec.aa)
            expected[key] = expected.get(key, 0) + 1
        for key, count in expected.items():
            assert table.cell(*key) == count
