"""TRANSPARENT behavior-host semantics: the off-path relay.

A transparent forwarder never answers from its own address: it relays
the probe to ``forward_to`` carrying the *client's* source endpoint, so
the upstream's answer reaches the prober directly. These tests pin the
wire-level signature — relay source spoofing, off-path R2 origin, the
upstream port staying bound for ghost Q2s — and the spec-level
invariants the population overlay relies on.
"""

import pytest

from repro.dnslib.message import make_query
from repro.dnslib.wire import decode_message, encode_message
from repro.dnssrv.hierarchy import build_hierarchy
from repro.dnssrv.recursive import RecursiveResolver
from repro.netsim.network import Network
from repro.netsim.packet import Datagram
from repro.resolvers.behavior import AnswerKind, BehaviorSpec, ResponseMode
from repro.resolvers.host import BehaviorHost

PROBER = "132.170.3.1"
FORWARDER = "198.51.100.80"
UPSTREAM = "203.10.0.1"
QNAME = "or000x0000001"


def transparent_spec(**overrides):
    fields = dict(
        name="transparent", mode=ResponseMode.TRANSPARENT, ra=True, aa=False,
        answer_kind=AnswerKind.CORRECT, forward_to=UPSTREAM,
    )
    fields.update(overrides)
    return BehaviorSpec(**fields)


@pytest.fixture()
def world():
    network = Network(seed=9)
    hierarchy = build_hierarchy(network)
    RecursiveResolver(UPSTREAM, hierarchy.root_servers).attach(network)
    qname = f"{QNAME}.{hierarchy.sld}"
    from repro.dnslib.zone import Zone

    zone = Zone(hierarchy.sld)
    zone.add_a(qname, hierarchy.auth.ip)
    hierarchy.auth.load_zone(zone)
    return network, hierarchy, qname


def probe(network, qname, responses):
    network.bind(PROBER, 40000, lambda dgram, net: responses.append(dgram))
    network.send(
        Datagram(
            PROBER, 40000, FORWARDER, 53,
            encode_message(make_query(qname, msg_id=77)),
        )
    )
    network.run()


class TestRelaySignature:
    def test_answer_arrives_from_the_upstream_not_the_target(self, world):
        network, hierarchy, qname = world
        BehaviorHost(FORWARDER, transparent_spec(), hierarchy.auth.ip).attach(
            network
        )
        responses = []
        probe(network, qname, responses)
        assert len(responses) == 1
        assert responses[0].src_ip == UPSTREAM
        assert responses[0].src_ip != FORWARDER
        decoded = decode_message(responses[0].payload)
        assert decoded.header.msg_id == 77
        assert decoded.qname == qname
        assert decoded.first_a_record() is not None

    def test_q2_reaches_auth_from_the_upstream(self, world):
        network, hierarchy, qname = world
        BehaviorHost(FORWARDER, transparent_spec(), hierarchy.auth.ip).attach(
            network
        )
        log_start = len(hierarchy.auth.query_log)
        probe(network, qname, [])
        sources = {
            entry.src_ip for entry in hierarchy.auth.query_log[log_start:]
            if entry.qname == qname
        }
        assert sources == {UPSTREAM}

    def test_forwarder_counts_the_query_but_sends_no_response(self, world):
        network, hierarchy, qname = world
        host = BehaviorHost(FORWARDER, transparent_spec(), hierarchy.auth.ip)
        host.attach(network)
        probe(network, qname, [])
        assert host.queries_received == 1
        assert host.responses_sent == 0

    def test_extra_q2_ghosts_come_from_the_forwarder_itself(self, world):
        network, hierarchy, qname = world
        BehaviorHost(
            FORWARDER, transparent_spec(extra_q2=2), hierarchy.auth.ip
        ).attach(network)
        log_start = len(hierarchy.auth.query_log)
        probe(network, qname, [])
        sources = [
            entry.src_ip for entry in hierarchy.auth.query_log[log_start:]
            if entry.qname == qname
        ]
        assert sources.count(FORWARDER) == 2
        assert sources.count(UPSTREAM) == 1


class TestSpecInvariants:
    def test_transparent_mode_contacts_auth(self):
        assert transparent_spec().contacts_auth

    def test_relay_preserves_client_endpoint_on_the_wire(self, world):
        network, hierarchy, qname = world
        seen = []

        class _Tap:
            def on_send(self, now, datagram):
                seen.append(datagram)

            def on_deliver(self, now, datagram):
                pass

        network.attach_sink(_Tap())
        BehaviorHost(FORWARDER, transparent_spec(), hierarchy.auth.ip).attach(
            network
        )
        probe(network, qname, [])
        relays = [
            dgram for dgram in seen
            if dgram.dst_ip == UPSTREAM and dgram.dst_port == 53
        ]
        assert relays
        assert all(
            (dgram.src_ip, dgram.src_port) == (PROBER, 40000)
            for dgram in relays
        )
