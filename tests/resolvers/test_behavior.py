"""Behavior spec and host tests."""

import pytest

from repro.dnslib.constants import QueryType, Rcode
from repro.dnslib.message import make_query
from repro.dnslib.wire import DnsWireError, decode_message, encode_message
from repro.dnslib.zone import parse_master_file
from repro.dnssrv.hierarchy import build_hierarchy
from repro.resolvers.behavior import AnswerKind, BehaviorSpec, ResponseMode
from repro.resolvers.host import BehaviorHost
from repro.netsim.network import Network
from repro.netsim.packet import Datagram
from repro.threatintel.cymon import ThreatCategory

ZONE_TEXT = """\
$ORIGIN ucfsealresearch.net.
$TTL 300
@ IN SOA ns1 hostmaster 1 2 3 4 5
or000.0000000 IN A 45.76.1.10
"""

HOST_IP = "77.88.99.1"
PROBER_IP = "132.170.1.1"
QNAME = "or000.0000000.ucfsealresearch.net"


def make_spec(**overrides):
    base = dict(
        name="test",
        mode=ResponseMode.FABRICATE,
        ra=False,
        aa=False,
        rcode=Rcode.NOERROR,
        answer_kind=AnswerKind.NONE,
    )
    base.update(overrides)
    return BehaviorSpec(**base)


class TestSpecValidation:
    def test_correct_requires_resolve(self):
        with pytest.raises(ValueError):
            make_spec(answer_kind=AnswerKind.CORRECT)

    def test_incorrect_requires_destination(self):
        with pytest.raises(ValueError):
            make_spec(answer_kind=AnswerKind.INCORRECT_IP)

    def test_malicious_requires_ip_answer(self):
        with pytest.raises(ValueError):
            make_spec(
                answer_kind=AnswerKind.INCORRECT_URL,
                fixed_answer="evil.example",
                malicious_category=ThreatCategory.MALWARE,
            )

    def test_contacts_auth(self):
        resolve = make_spec(mode=ResponseMode.RESOLVE, answer_kind=AnswerKind.CORRECT)
        assert resolve.contacts_auth
        assert not make_spec().contacts_auth

    def test_describe(self):
        spec = make_spec(
            answer_kind=AnswerKind.INCORRECT_IP, fixed_answer="6.6.6.6", ra=True
        )
        text = spec.describe()
        assert "RA=1" in text
        assert "6.6.6.6" in text


def probe(spec, run=True):
    """Send one probe to a host with ``spec``; return (network, responses, auth)."""
    network = Network()
    hierarchy = build_hierarchy(network)
    hierarchy.auth.load_zone(parse_master_file(ZONE_TEXT))
    host = BehaviorHost(HOST_IP, spec, hierarchy.auth.ip)
    host.attach(network)
    raw = []
    network.bind(PROBER_IP, 40000, lambda dg, net: raw.append(dg))
    query = make_query(QNAME, msg_id=99)
    network.send(Datagram(PROBER_IP, 40000, HOST_IP, 53, encode_message(query)))
    if run:
        network.run()
    return network, raw, hierarchy.auth


class TestFabricatingHost:
    def test_blank_refused(self):
        spec = make_spec(rcode=Rcode.REFUSED)
        _, raw, auth = probe(spec)
        response = decode_message(raw[0].payload)
        assert response.rcode == Rcode.REFUSED
        assert response.answers == []
        assert not response.header.flags.ra
        assert auth.query_log == []  # no Q2 for fabricators

    def test_flags_follow_spec(self):
        spec = make_spec(ra=True, aa=True)
        _, raw, _ = probe(spec)
        response = decode_message(raw[0].payload)
        assert response.header.flags.ra
        assert response.header.flags.aa
        assert response.header.msg_id == 99

    def test_wrong_ip_answer(self):
        spec = make_spec(
            answer_kind=AnswerKind.INCORRECT_IP, fixed_answer="208.91.197.91", ra=True
        )
        _, raw, _ = probe(spec)
        response = decode_message(raw[0].payload)
        assert response.first_a_record().data.address == "208.91.197.91"
        assert response.qname == QNAME

    def test_url_answer_is_cname(self):
        spec = make_spec(
            answer_kind=AnswerKind.INCORRECT_URL, fixed_answer="u.dcoin.co"
        )
        _, raw, _ = probe(spec)
        response = decode_message(raw[0].payload)
        assert response.answers[0].rtype == QueryType.CNAME
        assert response.answers[0].data.cname == "u.dcoin.co"

    def test_string_answer_is_txt(self):
        spec = make_spec(
            answer_kind=AnswerKind.INCORRECT_STRING, fixed_answer="wild"
        )
        _, raw, _ = probe(spec)
        response = decode_message(raw[0].payload)
        assert response.answers[0].rtype == QueryType.TXT
        assert response.answers[0].data.strings == ("wild",)

    def test_empty_question_response(self):
        spec = make_spec(empty_question=True, rcode=Rcode.SERVFAIL, ra=True)
        _, raw, _ = probe(spec)
        response = decode_message(raw[0].payload)
        assert response.questions == []
        assert response.rcode == Rcode.SERVFAIL

    def test_malformed_answer_header_still_parses(self):
        spec = make_spec(answer_kind=AnswerKind.MALFORMED, fixed_answer="blob")
        _, raw, _ = probe(spec)
        payload = raw[0].payload
        with pytest.raises(DnsWireError):
            decode_message(payload)
        # Header fields remain readable, as with the paper's libpcap parser.
        flags_word = int.from_bytes(payload[2:4], "big")
        assert flags_word >> 15  # QR=1

    def test_garbage_query_ignored(self):
        network = Network()
        host = BehaviorHost(HOST_IP, make_spec(), "45.76.1.10")
        host.attach(network)
        network.send(Datagram(PROBER_IP, 40000, HOST_IP, 53, b"junk"))
        network.run()
        assert host.queries_received == 0


class TestResolvingHost:
    def test_correct_answer_comes_from_auth(self):
        spec = make_spec(
            mode=ResponseMode.RESOLVE, answer_kind=AnswerKind.CORRECT, ra=True
        )
        _, raw, auth = probe(spec)
        response = decode_message(raw[0].payload)
        assert response.first_a_record().data.address == "45.76.1.10"
        assert response.header.flags.ra
        assert len(auth.query_log) == 1
        assert auth.query_log[0].src_ip == HOST_IP
        assert auth.query_log[0].qname == QNAME

    def test_stealth_resolver_hides_ra(self):
        # RA=0 yet correct answer: the paper's 3,994-host 2018 class.
        spec = make_spec(
            mode=ResponseMode.RESOLVE, answer_kind=AnswerKind.CORRECT, ra=False
        )
        _, raw, _ = probe(spec)
        response = decode_message(raw[0].payload)
        assert not response.header.flags.ra
        assert response.first_a_record() is not None

    def test_extra_q2_ghost_queries(self):
        spec = make_spec(
            mode=ResponseMode.RESOLVE, answer_kind=AnswerKind.CORRECT, ra=True,
            extra_q2=3,
        )
        _, raw, auth = probe(spec)
        assert len(auth.query_log) == 4  # 1 real + 3 ghosts
        assert len(raw) == 1             # but exactly one R2

    def test_rcode_override_with_correct_answer(self):
        # The paper's answer+ServFail anomaly class.
        spec = make_spec(
            mode=ResponseMode.RESOLVE, answer_kind=AnswerKind.CORRECT, ra=True,
            rcode=Rcode.SERVFAIL,
        )
        _, raw, _ = probe(spec)
        response = decode_message(raw[0].payload)
        assert response.rcode == Rcode.SERVFAIL
        assert response.first_a_record() is not None
