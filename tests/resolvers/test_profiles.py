"""Calibration tests: profile marginals must equal the paper's tables.

Every number asserted here is printed in the paper (Tables II-VI,
section IV-B4), except where the paper is internally inconsistent; the
adjusted values and the deltas are documented in the profiles module
docstring and EXPERIMENTS.md.
"""

import pytest

from repro.dnslib.constants import Rcode
from repro.resolvers.behavior import AnswerKind
from repro.resolvers.profiles import (
    PROFILE_2013,
    PROFILE_2018,
    POOL_MALICIOUS,
    profile_for_year,
)


class TestProfileLookup:
    def test_years(self):
        assert profile_for_year(2013) is PROFILE_2013
        assert profile_for_year(2018) is PROFILE_2018

    def test_unknown_year(self):
        with pytest.raises(ValueError):
            profile_for_year(2020)

    def test_profiles_validate(self):
        PROFILE_2013.validate()
        PROFILE_2018.validate()


class TestTable2Calibration:
    def test_2018_q1_equals_probeable_space(self):
        assert PROFILE_2018.q1_full == 3_702_258_432

    def test_q2_r1_targets(self):
        assert PROFILE_2013.q2_r1_full == 38_079_578
        assert PROFILE_2018.q2_r1_full == 13_049_863

    def test_r2_totals(self):
        assert PROFILE_2013.total_r2() == 16_660_123
        assert PROFILE_2018.total_r2() == 6_506_258

    def test_durations_roughly_match_paper(self):
        # 2018: ~10h35m at 100k pps; 2013: ~7d5h with the C-based prober.
        s18 = PROFILE_2018.expected_probe_summary()
        assert 10 * 3600 < s18.duration_seconds < 11 * 3600
        s13 = PROFILE_2013.expected_probe_summary()
        assert 7 * 86400 < s13.duration_seconds < 7.5 * 86400

    def test_percentage_shares(self):
        s18 = PROFILE_2018.expected_probe_summary()
        assert round(s18.q2_share, 4) == 0.3525
        assert round(s18.r2_share, 4) == 0.1757
        s13 = PROFILE_2013.expected_probe_summary()
        assert round(s13.q2_share, 4) == 1.0357
        assert round(s13.r2_share, 3) == 0.453


class TestTable3Calibration:
    def test_2013(self):
        table = PROFILE_2013.expected_correctness()
        assert table.r2 == 16_660_123
        assert table.without_answer == 4_867_241
        assert table.correct == 11_671_589
        assert table.incorrect == 121_293
        assert round(table.err, 3) == 1.029

    def test_2018(self):
        table = PROFILE_2018.expected_correctness()
        assert table.without_answer == 3_642_109
        assert table.correct == 2_752_562
        assert table.incorrect == 111_093
        assert round(table.err, 3) == 3.879


class TestTable4Calibration:
    def test_2013_ra(self):
        table = PROFILE_2013.expected_flag_table("ra")
        assert table.zero.total == 4_389_788
        assert table.zero.without_answer == 4_147_838
        assert table.zero.correct == 166_108
        assert table.zero.incorrect == 75_842
        assert round(table.zero.err, 3) == 31.346
        assert table.one.total == 12_270_335
        assert table.one.without_answer == 719_403
        assert table.one.correct == 11_505_481
        assert table.one.incorrect == 45_451
        assert round(table.one.err, 3) == 0.393

    def test_2018_ra(self):
        table = PROFILE_2018.expected_flag_table("ra")
        assert table.zero.total == 3_503_581
        assert table.zero.without_answer == 3_434_415
        assert table.zero.correct == 3_994
        assert table.zero.incorrect == 65_172
        assert round(table.zero.err, 3) == 94.225
        assert table.one.total == 3_002_183
        assert table.one.without_answer == 207_694
        assert table.one.correct == 2_748_568
        assert table.one.incorrect == 45_921
        assert round(table.one.err, 3) == 1.643


class TestTable5Calibration:
    def test_2013_aa(self):
        table = PROFILE_2013.expected_flag_table("aa")
        assert table.zero.total == 16_278_999
        assert table.zero.without_answer == 4_717_485
        assert table.zero.correct == 11_518_500
        assert round(table.zero.err, 3) == 0.372
        assert table.one.total == 381_124
        assert table.one.without_answer == 149_756
        assert table.one.correct == 153_089
        assert table.one.incorrect == 78_279

    def test_2018_aa(self):
        table = PROFILE_2018.expected_flag_table("aa")
        # Paper prints AA0 W/O=3,512,053 and Wcorr=2,727,477, which is
        # inconsistent with its own Tables III/V marginals by 10 packets;
        # the calibrated values keep every marginal exact.
        assert table.zero.total == 6_256_571
        assert table.zero.without_answer == 3_512_063
        assert table.zero.correct == 2_727_467
        assert round(table.zero.err, 3) == 0.621
        assert table.one.total == 249_193
        assert table.one.without_answer == 130_046
        assert table.one.correct == 25_095
        assert table.one.incorrect == 94_052
        assert round(table.one.err, 3) == 78.938


class TestTable6Calibration:
    def test_2018_rcodes(self):
        table = PROFILE_2018.expected_rcode_table()
        assert table.with_answer[Rcode.NOERROR] == 2_860_940
        assert table.with_answer[Rcode.FORMERR] == 23
        assert table.with_answer[Rcode.SERVFAIL] == 2_489
        assert table.with_answer[Rcode.NXDOMAIN] == 10
        assert table.with_answer[Rcode.REFUSED] == 193
        assert table.nonzero_with_answer() == 2_715
        assert table.without_answer[Rcode.NOERROR] == 377_803
        assert table.without_answer[Rcode.NXDOMAIN] == 48_830
        assert table.without_answer[Rcode.NOTIMP] == 605
        assert table.without_answer[Rcode.REFUSED] == 2_934_269
        assert table.without_answer[Rcode.YXDOMAIN] == 1
        assert table.without_answer[Rcode.YXRRSET] == 2
        assert table.without_answer[Rcode.NOTAUTH] == 80_032
        # ServFail carries the paper's 14 unaccounted W/O packets.
        assert table.without_answer[Rcode.SERVFAIL] == 200_334

    def test_2013_rcodes(self):
        table = PROFILE_2013.expected_rcode_table()
        assert table.with_answer[Rcode.SERVFAIL] == 12_723
        assert table.with_answer[Rcode.NXDOMAIN] == 10
        assert table.with_answer[Rcode.REFUSED] == 1_272
        assert table.nonzero_with_answer() == 14_005
        assert table.without_answer[Rcode.NOERROR] == 1_198_772
        assert table.without_answer[Rcode.FORMERR] == 453
        assert table.without_answer[Rcode.NXDOMAIN] == 145_724
        assert table.without_answer[Rcode.NOTIMP] == 38
        assert table.without_answer[Rcode.REFUSED] == 3_168_053
        assert table.without_answer[Rcode.YXRRSET] == 2
        assert table.without_answer[Rcode.NOTAUTH] == 11

    def test_row_sums_equal_table3(self):
        for profile in (PROFILE_2013, PROFILE_2018):
            rcode = profile.expected_rcode_table()
            correctness = profile.expected_correctness()
            assert rcode.total_with == correctness.with_answer
            assert rcode.total_without == correctness.without_answer


class TestEmptyQuestionCalibration:
    def test_2018_summary(self):
        summary = PROFILE_2018.expected_empty_question()
        assert summary.total == 494
        assert summary.with_answer == 19
        assert summary.correct == 0
        assert summary.ra1 == 184
        assert summary.aa1 == 2
        assert summary.rcodes[Rcode.NOERROR] == 26
        assert summary.rcodes[Rcode.FORMERR] == 1
        assert summary.rcodes[Rcode.SERVFAIL] == 301
        assert summary.rcodes[Rcode.REFUSED] == 163

    def test_2013_has_none(self):
        assert PROFILE_2013.expected_empty_question().total == 0


class TestOpenResolverEstimates:
    def test_section_4b1_estimates(self):
        est13 = PROFILE_2013.expected_open_resolver_estimates()
        assert est13.ra_flag_only == 12_270_335       # "12.2 million"
        assert est13.ra_and_correct == 11_505_481     # "about 11.5 million"
        assert est13.correct_any_flag == 11_671_589   # "about 11.7 million"
        est18 = PROFILE_2018.expected_open_resolver_estimates()
        assert est18.ra_flag_only == 3_002_183        # "3 million"
        assert est18.ra_and_correct == 2_748_568      # "about 2.74 million"
        assert est18.correct_any_flag == 2_752_562    # "about 2.75 million"


class TestMaliciousCalibration:
    def test_malicious_r2_totals(self):
        assert PROFILE_2013.cell_pool_total(POOL_MALICIOUS) == 12_874
        assert PROFILE_2018.cell_pool_total(POOL_MALICIOUS) == 26_926

    def test_table10_flag_joint_2018(self):
        cells = [
            cell for cell in PROFILE_2018.cells if cell.pool == POOL_MALICIOUS
        ]
        ra0 = sum(c.count for c in cells if not c.ra)
        ra1 = sum(c.count for c in cells if c.ra)
        aa0 = sum(c.count for c in cells if not c.aa)
        aa1 = sum(c.count for c in cells if c.aa)
        assert ra0 == 19_534
        assert ra1 == 7_392
        assert aa0 == 7_472
        assert aa1 == 19_454

    def test_malicious_all_noerror(self):
        for profile in (PROFILE_2013, PROFILE_2018):
            for cell in profile.cells:
                if cell.pool == POOL_MALICIOUS:
                    assert cell.rcode == Rcode.NOERROR

    def test_country_totals(self):
        assert sum(PROFILE_2013.malicious_countries.values()) == 12_874
        assert sum(PROFILE_2018.malicious_countries.values()) == 26_926
        assert len(PROFILE_2013.malicious_countries) == 36  # "36 countries"
        assert len(PROFILE_2018.malicious_countries) == 31  # "31 countries"

    def test_us_share_shift(self):
        # Paper: US share moved from ~98% to ~81%.
        us13 = PROFILE_2013.malicious_countries["US"] / 12_874
        us18 = PROFILE_2018.malicious_countries["US"] / 26_926
        assert 0.97 < us13 < 0.99
        assert 0.80 < us18 < 0.82


class TestIncorrectFormCalibration:
    def _form_totals(self, profile):
        totals = {}
        for cell in profile.cells:
            if cell.answer_kind.is_incorrect and not cell.empty_question:
                key = cell.answer_kind
                totals[key] = totals.get(key, 0) + cell.count
        return totals

    def test_2018_forms(self):
        totals = self._form_totals(PROFILE_2018)
        assert totals[AnswerKind.INCORRECT_IP] == 110_790
        assert totals[AnswerKind.INCORRECT_URL] == 231
        assert totals[AnswerKind.INCORRECT_STRING] == 72

    def test_2013_forms(self):
        totals = self._form_totals(PROFILE_2013)
        assert totals[AnswerKind.INCORRECT_IP] == 112_270
        assert totals[AnswerKind.INCORRECT_URL] == 249
        assert totals[AnswerKind.INCORRECT_STRING] == 10
        assert totals[AnswerKind.MALFORMED] == 8_764

    def test_top10_2018_sum(self):
        named = {
            d.value: d.count
            for d in PROFILE_2018.destinations
            if d.pool in ("benign-ip", "malicious")
        }
        top10 = [
            "216.194.64.193", "74.220.199.15", "208.91.197.91", "141.8.225.68",
            "192.168.1.1", "192.168.2.1", "114.44.34.86", "172.30.1.254",
            "10.0.0.1", "118.166.1.6",
        ]
        assert sum(named[ip] for ip in top10) == 50_669  # Table VIII total

    def test_malicious_named_2018(self):
        # "22,805 R2 packets pointing to the [three malicious top-10] IPs".
        malicious_named = sum(
            d.count for d in PROFILE_2018.destinations if d.malicious
        )
        assert malicious_named == 22_805

    def test_table9_category_splits_2018(self):
        by_cat = {}
        for d in PROFILE_2018.destinations:
            if d.malicious:
                by_cat[d.category] = by_cat.get(d.category, 0) + d.count
        for t in PROFILE_2018.tails:
            if t.category is not None:
                by_cat[t.category] = by_cat.get(t.category, 0) + t.count
        from repro.threatintel.cymon import ThreatCategory as TC

        assert by_cat[TC.MALWARE] == 23_189
        assert by_cat[TC.PHISHING] == 2_878
        assert by_cat[TC.SPAM] == 44
        assert by_cat[TC.SSH_BRUTEFORCE] == 323
        assert by_cat[TC.SCAN] == 388
        assert by_cat[TC.BOTNET] == 102
        assert by_cat[TC.EMAIL_BRUTEFORCE] == 2
