"""Largest-remainder apportionment tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.resolvers.apportion import apportion_mapping, largest_remainder, scale_count


class TestScaleCount:
    def test_rounds_half_up(self):
        assert scale_count(10, 4) == 3  # 2.5 -> 3
        assert scale_count(9, 4) == 2   # 2.25 -> 2
        assert scale_count(0, 4) == 0

    def test_identity_at_scale_one(self):
        assert scale_count(12345, 1) == 12345

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            scale_count(10, 0)


class TestLargestRemainder:
    def test_exact_division(self):
        assert largest_remainder([100, 200, 300], 100) == [1, 2, 3]

    def test_parts_sum_to_scaled_total(self):
        counts = [7, 13, 29, 51, 1]
        result = largest_remainder(counts, 10)
        assert sum(result) == scale_count(sum(counts), 10)

    def test_total_override(self):
        result = largest_remainder([50, 50], 10, total=11)
        assert sum(result) == 11

    def test_deterministic(self):
        counts = [3, 3, 3, 3]
        assert largest_remainder(counts, 2) == largest_remainder(counts, 2)

    def test_zero_counts(self):
        assert largest_remainder([0, 0], 5) == [0, 0]

    def test_zero_counts_with_positive_total_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder([0, 0], 5, total=3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            largest_remainder([-1, 2], 5)

    def test_proportionality(self):
        # A 9:1 split stays roughly 9:1.
        result = largest_remainder([900, 100], 10)
        assert result == [90, 10]

    @given(
        st.lists(st.integers(0, 10_000), min_size=1, max_size=30),
        st.integers(1, 1000),
    )
    def test_invariants(self, counts, scale):
        result = largest_remainder(counts, scale)
        assert sum(result) == scale_count(sum(counts), scale)
        assert all(part >= 0 for part in result)
        # No part exceeds its ceiling share by more than one unit.
        total = sum(counts)
        if total:
            scaled_total = scale_count(total, scale)
            for part, count in zip(result, counts):
                assert part <= count * scaled_total // total + 1

    @given(st.lists(st.integers(0, 1000), min_size=1, max_size=10))
    def test_zero_stays_zero(self, counts):
        result = largest_remainder(counts, 7)
        for part, count in zip(result, counts):
            if count == 0:
                assert part == 0


class TestApportionMapping:
    def test_preserves_keys(self):
        mapping = {"a": 100, "b": 300}
        result = apportion_mapping(mapping, 100)
        assert result == {"a": 1, "b": 3}
