"""Response-template equivalence: fast host vs forced-slow host.

Every BehaviorHost R2 must be byte-identical whether it went through
the template cache or the full ``DnsMessage`` pipeline. Each test here
deploys the *same* spec twice on one network — once normally and once
with the handler bound straight to ``_handle_query_slow`` so no fast
path can run — fires an identical query sequence at both (enough
distinct qnames to exhaust the template's verify renders, so later
replies come from the patched fast render), and requires the two reply
streams to match byte for byte.
"""

import pytest

from repro.dnslib.constants import DnsClass, QueryType, Rcode
from repro.dnslib.message import make_query
from repro.dnslib.wire import encode_message
from repro.dnslib.zone import parse_master_file
from repro.dnssrv.hierarchy import build_hierarchy
from repro.resolvers.behavior import AnswerKind, BehaviorSpec, ResponseMode
from repro.resolvers.host import BehaviorHost
from repro.netsim.network import Network
from repro.netsim.packet import Datagram

FAST_IP = "77.88.99.1"
SLOW_IP = "77.88.99.2"
PROBER_IP = "132.170.1.1"

#: Five same-length probe names (template fast path) plus one of a
#: different length, which a guarded template must handle via the slow
#: path without drifting a byte.
QNAMES = [f"or000.000000{i}.ucfsealresearch.net" for i in range(5)] + [
    "or000.00000099.ucfsealresearch.net"
]

ZONE_TEXT = "\n".join(
    ["$ORIGIN ucfsealresearch.net.", "$TTL 300",
     "@ IN SOA ns1 hostmaster 1 2 3 4 5"]
    + [f"{qname.split('.ucfsealresearch')[0]} IN A 45.76.1.10"
       for qname in QNAMES]
) + "\n"


def make_spec(**overrides):
    base = dict(
        name="test", mode=ResponseMode.FABRICATE, ra=False, aa=False,
        rcode=Rcode.NOERROR, answer_kind=AnswerKind.NONE,
    )
    base.update(overrides)
    return BehaviorSpec(**base)


def dual_probe(spec, queries, banner=None):
    """Replies from a fast host and a slow-forced twin, paired by msg_id."""
    network = Network()
    hierarchy = build_hierarchy(network)
    hierarchy.auth.load_zone(parse_master_file(ZONE_TEXT))
    fast_host = BehaviorHost(FAST_IP, spec, hierarchy.auth.ip,
                             version_banner=banner)
    fast_host.attach(network)
    slow_host = BehaviorHost(SLOW_IP, spec, hierarchy.auth.ip,
                             version_banner=banner)
    slow_host._network = network
    network.bind(SLOW_IP, 53, slow_host._handle_query_slow)
    if spec.contacts_auth:
        from repro.resolvers.host import HOST_UPSTREAM_PORT

        network.bind(SLOW_IP, HOST_UPSTREAM_PORT, slow_host.handle_upstream)
    replies: dict[str, dict[int, bytes]] = {FAST_IP: {}, SLOW_IP: {}}
    network.bind(
        PROBER_IP, 40000,
        lambda dg, net: replies[dg.src_ip].__setitem__(
            dg.payload[0] << 8 | dg.payload[1], dg.payload
        ),
    )
    for msg_id, wire in enumerate(queries, start=1):
        patched = bytes([msg_id >> 8, msg_id & 0xFF]) + wire[2:]
        for ip in (FAST_IP, SLOW_IP):
            network.send(Datagram(PROBER_IP, 40000, ip, 53, patched))
    network.run()
    return replies


def assert_byte_identical(spec, queries=None, banner=None):
    queries = queries if queries is not None else [
        encode_message(make_query(qname)) for qname in QNAMES
    ]
    replies = dual_probe(spec, queries, banner=banner)
    assert replies[FAST_IP], "no replies captured"
    assert replies[FAST_IP].keys() == replies[SLOW_IP].keys()
    for msg_id, payload in replies[FAST_IP].items():
        assert payload == replies[SLOW_IP][msg_id], f"msg_id {msg_id} drifted"
    return replies[FAST_IP]


class TestFabricatedTemplates:
    def test_refused_no_answer(self):
        assert_byte_identical(make_spec(rcode=Rcode.REFUSED))

    def test_incorrect_ip(self):
        assert_byte_identical(
            make_spec(answer_kind=AnswerKind.INCORRECT_IP,
                      fixed_answer="208.91.197.91", aa=True)
        )

    def test_incorrect_string(self):
        assert_byte_identical(
            make_spec(answer_kind=AnswerKind.INCORRECT_STRING,
                      fixed_answer="wild", ra=True)
        )

    def test_malformed(self):
        replies = assert_byte_identical(
            make_spec(answer_kind=AnswerKind.MALFORMED, rcode=Rcode.NOERROR)
        )
        # the malformed tail really is present in the templated replies
        assert all(payload.endswith(b"\x00") for payload in replies.values())

    def test_empty_question_header_only(self):
        assert_byte_identical(
            make_spec(rcode=Rcode.SERVFAIL, empty_question=True)
        )

    def test_empty_question_with_answer(self):
        assert_byte_identical(
            make_spec(answer_kind=AnswerKind.INCORRECT_IP,
                      fixed_answer="6.6.6.6", empty_question=True)
        )


class TestCnameSuffixGuard:
    def test_incorrect_url_plain_target(self):
        assert_byte_identical(
            make_spec(answer_kind=AnswerKind.INCORRECT_URL,
                      fixed_answer="landing.parked.example")
        )

    def test_incorrect_url_target_compresses_against_qname(self):
        # The CNAME target shares the probe SLD: the rdata compresses
        # against the qname, so the template tail depends on suffix
        # overlap — the guard must keep every qname byte-identical,
        # including the different-length one.
        assert_byte_identical(
            make_spec(answer_kind=AnswerKind.INCORRECT_URL,
                      fixed_answer="landing.ucfsealresearch.net")
        )

    def test_incorrect_url_target_equals_a_qname(self):
        assert_byte_identical(
            make_spec(answer_kind=AnswerKind.INCORRECT_URL,
                      fixed_answer=QNAMES[0])
        )


class TestResolvedTemplates:
    def test_correct_resolution(self):
        assert_byte_identical(
            make_spec(mode=ResponseMode.RESOLVE,
                      answer_kind=AnswerKind.CORRECT, ra=True)
        )

    def test_resolve_then_ignore_answer(self):
        # RESOLVE mode whose answer kind discards the upstream content
        # shares the fabricate-template shape.
        assert_byte_identical(
            make_spec(mode=ResponseMode.RESOLVE,
                      answer_kind=AnswerKind.INCORRECT_IP,
                      fixed_answer="1.2.3.4", ra=True)
        )

    def test_resolve_with_extra_q2(self):
        assert_byte_identical(
            make_spec(mode=ResponseMode.RESOLVE,
                      answer_kind=AnswerKind.CORRECT, ra=True, extra_q2=2)
        )


class TestVersionBind:
    def _queries(self):
        probe = [encode_message(make_query(qname)) for qname in QNAMES[:2]]
        chaos = [
            encode_message(
                make_query("version.bind", qtype=qtype, qclass=DnsClass.CH)
            )
            for qtype in (QueryType.TXT, QueryType.ANY)
        ]
        return probe + chaos

    def test_banner_revealed(self):
        assert_byte_identical(
            make_spec(rcode=Rcode.REFUSED), queries=self._queries(),
            banner="dnsmasq-2.51",
        )

    def test_banner_refused(self):
        assert_byte_identical(
            make_spec(rcode=Rcode.REFUSED), queries=self._queries(),
            banner=None,
        )
