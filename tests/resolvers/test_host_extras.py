"""BehaviorHost extras: version.bind and AD-bit behavior."""

from repro.dnslib.chaos import VERSION_BIND, extract_banner
from repro.dnslib.constants import DnsClass, QueryType, Rcode
from repro.dnslib.edns import add_edns
from repro.dnslib.message import make_query
from repro.dnslib.wire import decode_message, encode_message
from repro.dnslib.zone import parse_master_file
from repro.dnssrv.hierarchy import build_hierarchy
from repro.resolvers.behavior import AnswerKind, BehaviorSpec, ResponseMode
from repro.resolvers.host import BehaviorHost
from repro.netsim.network import Network
from repro.netsim.packet import Datagram

ZONE_TEXT = """\
$ORIGIN ucfsealresearch.net.
$TTL 300
@ IN SOA ns1 hostmaster 1 2 3 4 5
or000.0000000 IN A 45.76.1.10
"""

HOST_IP = "77.88.99.2"
PROBER_IP = "132.170.1.2"
QNAME = "or000.0000000.ucfsealresearch.net"


def build_host(spec_kwargs=None, **host_kwargs):
    network = Network()
    hierarchy = build_hierarchy(network)
    hierarchy.auth.load_zone(parse_master_file(ZONE_TEXT))
    base = dict(
        name="h", mode=ResponseMode.RESOLVE, ra=True, aa=False,
        answer_kind=AnswerKind.CORRECT,
    )
    base.update(spec_kwargs or {})
    host = BehaviorHost(HOST_IP, BehaviorSpec(**base), hierarchy.auth.ip,
                        **host_kwargs)
    host.attach(network)
    responses = []
    network.bind(PROBER_IP, 40000, lambda dg, net: responses.append(dg))
    return network, responses


def send(network, message):
    network.send(
        Datagram(PROBER_IP, 40000, HOST_IP, 53, encode_message(message))
    )
    network.run()


class TestVersionBind:
    def test_banner_revealed(self):
        network, responses = build_host(version_banner="dnsmasq-2.52")
        query = make_query(
            VERSION_BIND, qtype=QueryType.TXT, qclass=DnsClass.CH,
            recursion_desired=False,
        )
        send(network, query)
        (raw,) = responses
        response = decode_message(raw.payload)
        assert extract_banner(response) == "dnsmasq-2.52"

    def test_hidden_banner_refused(self):
        network, responses = build_host(version_banner=None)
        query = make_query(
            VERSION_BIND, qtype=QueryType.TXT, qclass=DnsClass.CH,
            recursion_desired=False,
        )
        send(network, query)
        (raw,) = responses
        assert decode_message(raw.payload).rcode == Rcode.REFUSED

    def test_in_class_version_bind_not_intercepted(self):
        # version.bind in the IN class is an ordinary (failing) lookup.
        network, responses = build_host(version_banner="dnsmasq-2.52")
        send(network, make_query(VERSION_BIND))
        (raw,) = responses
        response = decode_message(raw.payload)
        assert extract_banner(response) is None


class TestAdBit:
    def test_validator_sets_ad_under_do(self):
        network, responses = build_host(dnssec_validating=True)
        query = make_query(QNAME, msg_id=1)
        add_edns(query, dnssec_ok=True)
        send(network, query)
        response = decode_message(responses[0].payload)
        assert response.header.flags.ad
        assert response.first_a_record() is not None

    def test_no_ad_without_do(self):
        network, responses = build_host(dnssec_validating=True)
        send(network, make_query(QNAME, msg_id=2))
        response = decode_message(responses[0].payload)
        assert not response.header.flags.ad

    def test_non_validator_never_sets_ad(self):
        network, responses = build_host(dnssec_validating=False)
        query = make_query(QNAME, msg_id=3)
        add_edns(query, dnssec_ok=True)
        send(network, query)
        assert not decode_message(responses[0].payload).header.flags.ad

    def test_fabricated_answers_never_earn_ad(self):
        network, responses = build_host(
            spec_kwargs=dict(
                mode=ResponseMode.FABRICATE,
                answer_kind=AnswerKind.INCORRECT_IP,
                fixed_answer="208.91.197.91",
            ),
            dnssec_validating=True,
        )
        query = make_query(QNAME, msg_id=4)
        add_edns(query, dnssec_ok=True)
        send(network, query)
        response = decode_message(responses[0].payload)
        assert response.first_a_record() is not None
        assert not response.header.flags.ad
