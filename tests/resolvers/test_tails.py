"""Destination-tail scaling regime tests."""

import random

import pytest

from repro.resolvers.population import PopulationSampler
from repro.resolvers.profiles import DestinationTail, PROFILE_2018
from repro.threatintel.cymon import ThreatCategory


def expand(tail, scale, share, seed=0):
    sampler = PopulationSampler(PROFILE_2018, scale=scale, seed=seed)
    rng = random.Random(seed)
    return sampler._expand_tail(tail.pool, tail, share, rng)


class TestTailRegimes:
    def test_low_multiplicity_all_distinct(self):
        # m = 56,000/14,680 ~ 3.8 << scale 1024: every sampled packet
        # should land on its own value.
        tail = DestinationTail("benign-ip", 56_000, 14_680)
        expanded = expand(tail, scale=1024, share=55)
        values = {destination.value for destination in expanded}
        assert len(expanded) == 55
        assert len(values) == 55

    def test_high_multiplicity_values_survive(self):
        # m = 10_000/10 = 1000 >> scale 16: all ten values survive and
        # each carries many packets.
        tail = DestinationTail("benign-ip", 10_000, 10)
        expanded = expand(tail, scale=16, share=625)
        values = {destination.value for destination in expanded}
        assert len(expanded) == 625
        assert len(values) == 10

    def test_zero_share(self):
        tail = DestinationTail("benign-ip", 100, 10)
        assert expand(tail, scale=1024, share=0) == []

    def test_category_propagates(self):
        tail = DestinationTail("malicious", 1_581, 168, ThreatCategory.MALWARE)
        expanded = expand(tail, scale=1024, share=2)
        assert all(
            destination.category is ThreatCategory.MALWARE
            for destination in expanded
        )

    def test_unique_never_exceeds_share_or_pool(self):
        tail = DestinationTail("benign-ip", 1_000, 5)
        expanded = expand(tail, scale=2, share=500)
        values = {destination.value for destination in expanded}
        assert len(values) <= 5
        expanded = expand(tail, scale=999, share=1)
        assert len({d.value for d in expanded}) == 1
