"""Population sampler tests."""

import pytest

from repro.netsim.ipv4 import is_probeable
from repro.resolvers.apportion import scale_count
from repro.resolvers.behavior import AnswerKind
from repro.resolvers.population import PopulationSampler
from repro.resolvers.profiles import PROFILE_2013, PROFILE_2018, POOL_MALICIOUS

SCALE = 4096


def sample_2018(seed=0, scale=SCALE):
    return PopulationSampler(PROFILE_2018, scale=scale, seed=seed).sample()


class TestSampling:
    def test_host_count_matches_scaled_r2(self):
        population = sample_2018()
        assert population.host_count == scale_count(PROFILE_2018.total_r2(), SCALE)

    def test_cell_counts_sum(self):
        population = sample_2018()
        assert sum(population.scaled_cell_counts.values()) == population.host_count

    def test_deterministic_for_seed(self):
        first = sample_2018(seed=5)
        second = sample_2018(seed=5)
        assert [a.ip for a in first.assignments] == [a.ip for a in second.assignments]
        assert [a.spec for a in first.assignments] == [
            a.spec for a in second.assignments
        ]

    def test_different_seed_different_layout(self):
        assert sample_2018(seed=1).address_set() != sample_2018(seed=2).address_set()

    def test_all_hosts_probeable_and_unique(self):
        population = sample_2018()
        ips = [a.ip for a in population.assignments]
        assert len(set(ips)) == len(ips)
        assert all(is_probeable(ip) for ip in ips)

    def test_excluded_ips_respected(self):
        population = sample_2018()
        forbidden = next(iter(population.address_set()))
        redone = PopulationSampler(
            PROFILE_2018, scale=SCALE, seed=0, excluded_ips={forbidden}
        ).sample()
        assert forbidden not in redone.address_set()

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            PopulationSampler(PROFILE_2018, scale=0)

    def test_malicious_hosts_scaled(self):
        population = sample_2018()
        expected = scale_count(PROFILE_2018.cell_pool_total(POOL_MALICIOUS), SCALE)
        # Largest remainder across four malicious cells can shift by a unit.
        assert abs(population.malicious_host_count - expected) <= 2

    def test_every_incorrect_host_has_destination(self):
        population = sample_2018()
        for assignment in population.assignments:
            if assignment.spec.answer_kind.is_incorrect:
                if assignment.spec.answer_kind is not AnswerKind.MALFORMED:
                    assert assignment.spec.fixed_answer

    def test_ghost_budget_distributed(self):
        population = sample_2018()
        resolving = [
            a for a in population.assignments
            if a.spec.answer_kind is AnswerKind.CORRECT
        ]
        ghost_total = sum(a.spec.extra_q2 for a in resolving)
        expected = scale_count(PROFILE_2018.ghost_q2_total(), SCALE)
        assert ghost_total == expected
        # Budget is spread evenly, not lumped on one host.
        assert max(a.spec.extra_q2 for a in resolving) <= min(
            a.spec.extra_q2 for a in resolving
        ) + 1


class TestIntelSeeding:
    def test_malicious_destinations_reported_in_cymon(self):
        population = sample_2018()
        for assignment in population.assignments:
            if assignment.malicious:
                assert population.cymon.is_malicious(assignment.spec.fixed_answer)

    def test_benign_named_destinations_not_reported(self):
        population = sample_2018(scale=1024)
        assert not population.cymon.is_malicious("216.194.64.193")

    def test_named_orgs_in_whois(self):
        population = sample_2018(scale=1024)
        assert population.whois.org_name("216.194.64.193") == "Tera-byte Dot Com"
        assert population.whois.org_name("74.220.199.15") == "Unified Layer"

    def test_every_host_geolocated(self):
        population = sample_2018()
        for assignment in population.assignments:
            assert population.geo.country_of(assignment.ip) == assignment.country
            assert assignment.country

    def test_malicious_country_mix_dominated_by_us(self):
        population = sample_2018(scale=1024)
        from collections import Counter

        countries = Counter(
            a.country for a in population.assignments if a.malicious
        )
        assert countries["US"] > sum(countries.values()) * 0.6

    def test_dominant_categories_match_assignment(self):
        population = sample_2018(scale=1024)
        for assignment in population.assignments:
            if assignment.malicious:
                dominant = population.cymon.dominant_category(
                    assignment.spec.fixed_answer
                )
                assert dominant == assignment.spec.malicious_category


class TestDeploy:
    def test_deploy_binds_all_hosts(self):
        from repro.netsim.network import Network

        population = sample_2018(scale=16384)
        network = Network()
        hosts = population.deploy(network, auth_ip="45.76.1.10")
        assert len(hosts) == population.host_count
        for host in hosts:
            assert network.is_bound(host.ip, 53)


class Test2013Profile:
    def test_2013_population_samples(self):
        population = PopulationSampler(PROFILE_2013, scale=16384, seed=3).sample()
        assert population.host_count == scale_count(PROFILE_2013.total_r2(), 16384)
        malformed = [
            a for a in population.assignments
            if a.spec.answer_kind is AnswerKind.MALFORMED
        ]
        assert malformed  # the 2013 undecodable class exists
