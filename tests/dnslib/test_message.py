"""Tests for the high-level message helpers."""

from repro.dnslib.constants import QueryType, Rcode
from repro.dnslib.message import make_query, make_response
from repro.dnslib.records import AData, ResourceRecord


class TestMakeQuery:
    def test_defaults(self):
        query = make_query("example.com")
        assert not query.header.flags.qr
        assert query.header.flags.rd
        assert not query.header.flags.ra
        assert query.questions[0].qtype == QueryType.A

    def test_recursion_desired_off(self):
        query = make_query("example.com", recursion_desired=False)
        assert not query.header.flags.rd

    def test_qname_normalized(self):
        query = make_query("EXAMPLE.COM.")
        assert query.qname == "example.com"


class TestMakeResponse:
    def test_copies_id_and_question(self):
        query = make_query("or000.0000001.ucfsealresearch.net", msg_id=42)
        response = make_response(query)
        assert response.header.msg_id == 42
        assert response.header.flags.qr
        assert response.qname == query.qname

    def test_preserves_rd_from_query(self):
        query = make_query("example.com", recursion_desired=True)
        assert make_response(query).header.flags.rd
        query = make_query("example.com", recursion_desired=False)
        assert not make_response(query).header.flags.rd

    def test_empty_question_variant(self):
        query = make_query("example.com")
        response = make_response(query, copy_question=False, rcode=Rcode.SERVFAIL)
        assert response.questions == []
        assert response.qname is None

    def test_flag_overrides(self):
        query = make_query("example.com")
        response = make_response(query, aa=True, ra=False)
        assert response.header.flags.aa
        assert not response.header.flags.ra

    def test_first_a_record(self):
        query = make_query("example.com")
        answers = [
            ResourceRecord("example.com", QueryType.A, data=AData("9.9.9.9")),
            ResourceRecord("example.com", QueryType.A, data=AData("8.8.8.8")),
        ]
        response = make_response(query, answers=answers)
        assert response.first_a_record().data.address == "9.9.9.9"

    def test_first_a_record_none_when_empty(self):
        query = make_query("example.com")
        assert make_response(query).first_a_record() is None
