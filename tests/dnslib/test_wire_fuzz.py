"""Seeded round-trip fuzzing of the wire codec.

Complements the hostile-bytes fuzz in ``test_fuzz.py``: here the
inputs are randomly generated *valid* messages — random names with
shared suffixes (forcing compression pointers), EDNS OPT records, and
every supported RDATA type — and the property is exact:
``decode(encode(m)) == m``, with and without name compression. A
second family of properties mutates the valid wire forms (truncation,
bit flips, length-field corruption) and requires a clean
``DnsWireError`` or a successful decode — never any other exception.

Deterministic by construction (``random.Random(seed)``), so a failure
reproduces from the printed seed alone.
"""

import random

import pytest

from repro.dnslib.buffer import DnsWireError
from repro.dnslib.constants import DnsClass, Opcode, QueryType, Rcode
from repro.dnslib.edns import add_edns, extract_edns
from repro.dnslib.message import (
    DnsFlags,
    DnsHeader,
    DnsMessage,
    Question,
)
from repro.dnslib.records import (
    AData,
    AaaaData,
    CnameData,
    MxData,
    NsData,
    PtrData,
    RawData,
    ResourceRecord,
    SoaData,
    TxtData,
)
from repro.dnslib.wire import decode_message, encode_message

_LABEL_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789-"

#: Shared suffixes: drawing owner names from a small pool of parent
#: domains guarantees repeated suffixes inside one message, which is
#: exactly what makes the compressing encoder emit pointers.
_SUFFIX_POOL = (
    "example.com",
    "sub.example.com",
    "resolver-test.net",
    "a.long.chain.of.labels.org",
)


def _label(rng: random.Random) -> str:
    length = rng.randint(1, 12)
    label = "".join(rng.choice(_LABEL_ALPHABET) for _ in range(length))
    # Leading hyphens are fine for this permissive codec, but keep the
    # labels canonical-lowercase so normalize_name is the identity.
    return label


def _name(rng: random.Random) -> str:
    suffix = rng.choice(_SUFFIX_POOL)
    depth = rng.randint(0, 2)
    labels = [_label(rng) for _ in range(depth)]
    return ".".join(labels + [suffix])


def _ipv4(rng: random.Random) -> str:
    return ".".join(str(rng.randint(0, 255)) for _ in range(4))


def _rdata(rng: random.Random, rtype):
    if rtype == QueryType.A:
        return AData(_ipv4(rng))
    if rtype == QueryType.AAAA:
        return AaaaData(rng.randbytes(16))
    if rtype == QueryType.NS:
        return NsData(_name(rng))
    if rtype == QueryType.CNAME:
        return CnameData(_name(rng))
    if rtype == QueryType.PTR:
        return PtrData(_name(rng))
    if rtype == QueryType.MX:
        return MxData(rng.randint(0, 0xFFFF), _name(rng))
    if rtype == QueryType.TXT:
        return TxtData(
            tuple(
                "".join(rng.choice(_LABEL_ALPHABET) for _ in range(rng.randint(0, 40)))
                for _ in range(rng.randint(1, 3))
            )
        )
    if rtype == QueryType.SOA:
        return SoaData(
            mname=_name(rng),
            rname=_name(rng),
            serial=rng.randint(0, 0xFFFFFFFF),
            refresh=rng.randint(0, 0xFFFFFFFF),
            retry=rng.randint(0, 0xFFFFFFFF),
            expire=rng.randint(0, 0xFFFFFFFF),
            minimum=rng.randint(0, 0xFFFFFFFF),
        )
    # An unregistered type: opaque RDATA must survive the round trip.
    return RawData(int(rtype), rng.randbytes(rng.randint(0, 24)))


_RECORD_TYPES = (
    QueryType.A,
    QueryType.AAAA,
    QueryType.NS,
    QueryType.CNAME,
    QueryType.PTR,
    QueryType.MX,
    QueryType.TXT,
    QueryType.SOA,
    99,  # TYPE99 — no codec, exercises the RawData path
)


def _record(rng: random.Random) -> ResourceRecord:
    rtype = rng.choice(_RECORD_TYPES)
    return ResourceRecord(
        name=_name(rng),
        rtype=QueryType.from_value(int(rtype)),
        rclass=DnsClass.IN,
        ttl=rng.randint(0, 0xFFFFFFFF),
        data=_rdata(rng, rtype),
    )


def _message(rng: random.Random) -> DnsMessage:
    flags = DnsFlags(
        qr=rng.random() < 0.5,
        aa=rng.random() < 0.5,
        tc=rng.random() < 0.1,
        rd=rng.random() < 0.5,
        ra=rng.random() < 0.5,
        ad=rng.random() < 0.2,
        cd=rng.random() < 0.2,
    )
    header = DnsHeader(
        msg_id=rng.randint(0, 0xFFFF),
        flags=flags,
        opcode=rng.choice((Opcode.QUERY, Opcode.STATUS)),
        rcode=rng.choice(
            (Rcode.NOERROR, Rcode.SERVFAIL, Rcode.NXDOMAIN, Rcode.REFUSED)
        ),
    )
    questions = [
        Question(_name(rng), rng.choice((QueryType.A, QueryType.ANY)), DnsClass.IN)
        for _ in range(rng.randint(0, 2))
    ]
    message = DnsMessage(
        header=header,
        questions=questions,
        answers=[_record(rng) for _ in range(rng.randint(0, 4))],
        authorities=[_record(rng) for _ in range(rng.randint(0, 2))],
        additionals=[_record(rng) for _ in range(rng.randint(0, 2))],
    )
    if rng.random() < 0.4:
        add_edns(
            message,
            payload_size=rng.choice((512, 1232, 4096)),
            dnssec_ok=rng.random() < 0.5,
        )
    return message


class TestRoundTrip(object):
    @pytest.mark.parametrize("seed", range(30))
    def test_compressed_round_trip_exact(self, seed):
        rng = random.Random(seed)
        for _ in range(10):
            message = _message(rng)
            wire = encode_message(message, compress=True)
            assert decode_message(wire) == message, f"seed={seed}"

    @pytest.mark.parametrize("seed", range(30, 45))
    def test_uncompressed_round_trip_exact(self, seed):
        rng = random.Random(seed)
        for _ in range(10):
            message = _message(rng)
            wire = encode_message(message, compress=False)
            assert decode_message(wire) == message, f"seed={seed}"

    def test_compression_actually_fires(self):
        # Sanity for the suffix-pool design: with shared suffixes the
        # compressed form must be strictly smaller and contain pointers.
        rng = random.Random(1234)
        message = DnsMessage(
            questions=[Question(_name(rng))],
            answers=[_record(rng) for _ in range(6)],
        )
        compressed = encode_message(message, compress=True)
        flat = encode_message(message, compress=False)
        assert len(compressed) < len(flat)
        assert any(byte & 0xC0 == 0xC0 for byte in compressed[12:])

    def test_edns_survives_round_trip(self):
        rng = random.Random(77)
        for _ in range(20):
            message = _message(rng)
            # add_edns is idempotent, so drop any OPT _message minted.
            message.additionals = [
                record
                for record in message.additionals
                if record.rtype != QueryType.OPT
            ]
            add_edns(message, payload_size=1232, dnssec_ok=True)
            decoded = decode_message(encode_message(message))
            options = extract_edns(decoded)
            assert options is not None
            assert options.payload_size == 1232
            assert options.dnssec_ok


class TestMutatedWire(object):
    """Corrupting valid wire forms must raise DnsWireError or decode."""

    @staticmethod
    def _decodes_cleanly(data: bytes) -> None:
        try:
            decode_message(data)
        except DnsWireError:
            pass  # the only acceptable exception

    @pytest.mark.parametrize("seed", range(20))
    def test_truncations(self, seed):
        rng = random.Random(seed)
        wire = encode_message(_message(rng))
        for cut in range(0, len(wire), max(1, len(wire) // 40)):
            self._decodes_cleanly(wire[:cut])

    @pytest.mark.parametrize("seed", range(20, 35))
    def test_bit_flips(self, seed):
        rng = random.Random(seed)
        wire = bytearray(encode_message(_message(rng)))
        for _ in range(60):
            position = rng.randrange(len(wire))
            mutated = bytearray(wire)
            mutated[position] ^= 1 << rng.randrange(8)
            self._decodes_cleanly(bytes(mutated))

    @pytest.mark.parametrize("seed", range(35, 45))
    def test_section_count_corruption(self, seed):
        # Inflated section counts make the decoder walk past the end of
        # the buffer; it must diagnose that, not wander or crash.
        rng = random.Random(seed)
        wire = bytearray(encode_message(_message(rng)))
        for offset in (4, 6, 8, 10):
            mutated = bytearray(wire)
            mutated[offset:offset + 2] = (0xFFFF).to_bytes(2, "big")
            self._decodes_cleanly(bytes(mutated))

    def test_pointer_loop_rejected(self):
        # A name that points at itself must terminate with an error.
        header = (0).to_bytes(2, "big") + (0x8000).to_bytes(2, "big")
        counts = (1).to_bytes(2, "big") + (0).to_bytes(2, "big") * 3
        loop = b"\xc0\x0c" + (1).to_bytes(2, "big") + (1).to_bytes(2, "big")
        with pytest.raises(DnsWireError):
            decode_message(header + counts + loop)
