"""Property-based fastwire conformance (Hypothesis).

The seeded-fuzz suite in ``test_fastwire.py`` walks a fixed sample of
the input space; these properties let Hypothesis search it. The
contract under test is the same everywhere: a fast codec either emits
exactly the reference codec's bytes or refuses, and a fast parser
accepts only payloads the full decoder parses identically. The
RRSIG-bearing cases matter doubly — the validation probe's bogus
responses must (a) round-trip through the reference codec without
losing their corruption and (b) be *refused* by the single-A peek, so
hosts fall back to the slow path where the signature is actually
inspected.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnslib.constants import DnsClass, QueryType
from repro.dnslib.fastwire import (
    TemplateCache,
    build_query_wire,
    parse_simple_query,
    peek_header,
    peek_msg_id,
    peek_qname,
    peek_single_a_response,
)
from repro.dnslib.message import make_query, make_response
from repro.dnslib.records import AData, ResourceRecord
from repro.dnslib.signing import corrupt_rrsig, sign_rrset, verify_rrsig
from repro.dnslib.wire import decode_message, encode_message

# Lower-case plain labels: the subset parse_simple_query promises to
# accept and the subset the measurement's subdomain scheme mints.
_label = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-_", min_size=1, max_size=20
)
_qname = st.lists(_label, min_size=1, max_size=5).map(".".join)
_msg_id = st.integers(min_value=0, max_value=0xFFFF)
_qtype = st.sampled_from(
    [QueryType.A, QueryType.AAAA, QueryType.TXT, QueryType.NS, QueryType.ANY]
)
_ipv4 = st.tuples(
    st.integers(1, 254), st.integers(0, 255),
    st.integers(0, 255), st.integers(1, 254),
).map(lambda parts: ".".join(str(part) for part in parts))


class TestQueryCodecRoundTrip:
    @given(qname=_qname, qtype=_qtype, msg_id=_msg_id, rd=st.booleans())
    def test_build_query_wire_matches_reference(self, qname, qtype, msg_id, rd):
        fast = build_query_wire(
            qname, qtype=qtype, msg_id=msg_id, recursion_desired=rd
        )
        slow = encode_message(
            make_query(qname, qtype=qtype, msg_id=msg_id, recursion_desired=rd)
        )
        assert fast == slow

    @given(qname=_qname, qtype=_qtype, msg_id=_msg_id, rd=st.booleans())
    def test_parse_simple_query_inverts_the_encoder(
        self, qname, qtype, msg_id, rd
    ):
        wire = build_query_wire(
            qname, qtype=qtype, msg_id=msg_id, recursion_desired=rd
        )
        fast = parse_simple_query(wire)
        assert fast is not None
        assert (fast.qname, fast.qtype, fast.msg_id) == (
            qname, int(qtype), msg_id
        )
        reference = decode_message(wire)
        assert encode_message(fast.to_message()) == encode_message(reference)

    @given(payload=st.binary(max_size=64))
    def test_peeks_never_raise_and_agree_when_strict_parse_accepts(
        self, payload
    ):
        header = peek_header(payload)
        msg_id = peek_msg_id(payload)
        peek_qname(payload)  # lenient: must simply not raise
        fast = parse_simple_query(payload)
        if fast is not None:
            assert header is not None and header[0] == fast.msg_id
            assert msg_id == fast.msg_id
            # Strict acceptance implies the full decoder agrees.
            reference = decode_message(payload)
            assert reference.qname == fast.qname


def _signed_answer(qname, address, corrupt):
    a_record = ResourceRecord(qname, QueryType.A, ttl=300, data=AData(address))
    rrsig = sign_rrset([a_record], signer_name=qname)
    if corrupt:
        rrsig = corrupt_rrsig(rrsig)
    return [a_record, rrsig]


class TestRrsigResponses:
    @given(
        qname=_qname, msg_id=_msg_id, address=_ipv4, corrupt=st.booleans()
    )
    def test_round_trip_preserves_signature_bytes(
        self, qname, msg_id, address, corrupt
    ):
        answers = _signed_answer(qname, address, corrupt)
        response = make_response(
            make_query(qname, msg_id=msg_id), answers=answers, aa=True
        )
        wire = encode_message(response)
        decoded = decode_message(wire)
        assert encode_message(decoded) == wire
        rrsigs = [
            record for record in decoded.answers
            if int(record.rtype) == int(QueryType.RRSIG)
        ]
        assert len(rrsigs) == 1
        assert rrsigs[0].data.signature == answers[1].data.signature
        a_records = [
            record for record in decoded.answers
            if int(record.rtype) == int(QueryType.A)
        ]
        assert verify_rrsig(rrsigs[0].data, a_records) is (not corrupt)

    @given(qname=_qname, msg_id=_msg_id, address=_ipv4, corrupt=st.booleans())
    def test_single_a_peek_refuses_rrsig_bearing_responses(
        self, qname, msg_id, address, corrupt
    ):
        # The validation gate: a host that trusted the single-A fast
        # path on an A+RRSIG answer would skip signature inspection.
        response = make_response(
            make_query(qname, msg_id=msg_id, recursion_desired=False),
            answers=_signed_answer(qname, address, corrupt),
            aa=True, ra=False,
        )
        assert peek_single_a_response(encode_message(response)) is None

    @given(qname=_qname, msg_id=_msg_id, address=_ipv4)
    def test_single_a_peek_accepts_the_unsigned_shape(
        self, qname, msg_id, address
    ):
        response = make_response(
            make_query(qname, msg_id=msg_id, recursion_desired=False),
            answers=[
                ResourceRecord(qname, QueryType.A, ttl=300, data=AData(address))
            ],
            aa=True, ra=False,
        )
        wire = encode_message(response)
        peeked = peek_single_a_response(wire)
        assert peeked is not None
        got_id, _, ttl, addr = peeked
        assert got_id == msg_id
        assert ttl == 300
        assert ".".join(str(octet) for octet in addr) == address


class TestTemplateCacheWithSignatures:
    @settings(max_examples=30)
    @given(
        qnames=st.lists(_qname, min_size=3, max_size=8, unique=True),
        msg_ids=st.lists(_msg_id, min_size=3, max_size=8),
        address=_ipv4,
        corrupt=st.booleans(),
    )
    def test_rendered_bytes_always_match_slow_path(
        self, qnames, msg_ids, address, corrupt
    ):
        # Same-shape responses (A + RRSIG over varying qnames) through
        # one cache key: every render must equal the slow encoding,
        # before and after the template graduates from verification.
        cache = TemplateCache(verify_renders=2)
        for index, qname in enumerate(qnames):
            msg_id = msg_ids[index % len(msg_ids)]
            wire = build_query_wire(qname, msg_id=msg_id)
            fast = parse_simple_query(wire)
            assert fast is not None

            def slow_render(fast=fast, qname=qname):
                return encode_message(
                    make_response(
                        fast.to_message(),
                        answers=_signed_answer(qname, address, corrupt),
                        aa=True,
                    )
                )

            rendered = cache.render(
                ("signed-a", address, corrupt), fast, slow_render,
                guard_names=(qname,),
            )
            assert rendered == slow_render()
