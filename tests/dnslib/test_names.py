"""Unit tests for domain-name handling."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dnslib.names import (
    DnsNameError,
    is_subdomain,
    name_depth,
    normalize_name,
    parent_name,
    split_labels,
    validate_name,
)

LABEL = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=20
)
NAME = st.lists(LABEL, min_size=1, max_size=5).map(".".join)


class TestNormalizeName:
    def test_lowercases(self):
        assert normalize_name("WWW.Example.COM") == "www.example.com"

    def test_strips_trailing_dot(self):
        assert normalize_name("example.com.") == "example.com"

    def test_root_forms(self):
        assert normalize_name("") == ""
        assert normalize_name(".") == ""

    def test_rejects_empty_label(self):
        with pytest.raises(DnsNameError):
            normalize_name("a..b")

    def test_rejects_overlong_label(self):
        with pytest.raises(DnsNameError):
            normalize_name("a" * 64 + ".com")

    def test_rejects_overlong_name(self):
        name = ".".join(["a" * 60] * 5)
        with pytest.raises(DnsNameError):
            normalize_name(name)

    def test_accepts_max_label(self):
        assert normalize_name("a" * 63 + ".com") == "a" * 63 + ".com"

    @given(NAME)
    def test_idempotent(self, name):
        assert normalize_name(normalize_name(name)) == normalize_name(name)


class TestValidateName:
    def test_root_is_valid(self):
        validate_name("")

    def test_permissive_characters(self):
        # The paper's dataset has garbage answers like 'wild' and '04b4...'.
        validate_name("04b400000000")
        validate_name("u.dcoin.co")


class TestHierarchy:
    def test_split_labels(self):
        assert split_labels("www.example.com") == ["www", "example", "com"]
        assert split_labels("") == []

    def test_name_depth(self):
        assert name_depth("") == 0
        assert name_depth("com") == 1
        assert name_depth("www.example.com") == 3

    def test_parent_name(self):
        assert parent_name("www.example.com") == "example.com"
        assert parent_name("com") == ""
        with pytest.raises(DnsNameError):
            parent_name("")

    def test_is_subdomain(self):
        assert is_subdomain("a.example.com", "example.com")
        assert is_subdomain("example.com", "example.com")
        assert not is_subdomain("notexample.com", "example.com")
        assert is_subdomain("anything.at.all", "")

    @given(NAME)
    def test_everything_is_under_root(self, name):
        assert is_subdomain(name, "")

    @given(NAME)
    def test_name_is_under_its_parent(self, name):
        if name_depth(name) >= 2:
            assert is_subdomain(name, parent_name(name))

    @given(NAME)
    def test_depth_decreases_by_one(self, name):
        assert name_depth(parent_name(name)) == name_depth(name) - 1
