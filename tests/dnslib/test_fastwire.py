"""Fast-path codec equivalence: template bytes vs the object codec.

The fastwire contract is byte identity — every fast encoder must emit
exactly the bytes of the ``DnsMessage`` pipeline, and every fast parser
must accept only payloads the full decoder parses identically. These
tests enforce the contract with seeded fuzzing (``random.Random``, so a
failure reproduces from the seed alone), mirroring the wire-codec fuzz
suite's idiom.
"""

import random

import pytest

from repro.dnslib.constants import DnsClass, QueryType
from repro.dnslib.fastwire import (
    Q1Template,
    build_query_wire,
    parse_simple_query,
    peek_header,
    peek_msg_id,
    peek_qname,
    peek_single_a_response,
)
from repro.dnslib.message import make_query, make_response
from repro.dnslib.wire import decode_message, encode_message
from repro.prober.subdomain import SubdomainScheme

_LABEL_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789-_"


def _random_qname(rng: random.Random) -> str:
    labels = [
        "".join(rng.choice(_LABEL_ALPHABET) for _ in range(rng.randint(1, 20)))
        for _ in range(rng.randint(1, 5))
    ]
    return ".".join(labels)


class TestBuildQueryWire:
    def test_matches_object_codec_fuzzed(self):
        rng = random.Random(1234)
        qtypes = [QueryType.A, QueryType.AAAA, QueryType.TXT, QueryType.ANY]
        for _ in range(300):
            qname = _random_qname(rng)
            qtype = rng.choice(qtypes)
            msg_id = rng.randint(0, 0xFFFF)
            rd = rng.random() < 0.5
            fast = build_query_wire(
                qname, qtype=qtype, msg_id=msg_id, recursion_desired=rd
            )
            slow = encode_message(
                make_query(qname, qtype=qtype, msg_id=msg_id,
                           recursion_desired=rd)
            )
            assert fast == slow, f"qname={qname!r} qtype={qtype} id={msg_id}"

    def test_roundtrips_through_strict_parser(self):
        rng = random.Random(99)
        for _ in range(200):
            qname = _random_qname(rng)
            msg_id = rng.randint(0, 0xFFFF)
            wire = build_query_wire(qname, msg_id=msg_id)
            fast = parse_simple_query(wire)
            assert fast is not None
            assert fast.qname == qname
            assert fast.msg_id == msg_id


class TestQ1Template:
    def test_matches_object_codec_fuzzed(self):
        scheme = SubdomainScheme()
        template = Q1Template(scheme)
        rng = random.Random(7)
        for _ in range(300):
            cluster = rng.randint(0, scheme.max_clusters - 1)
            index = rng.randint(0, 10**scheme.index_digits - 1)
            msg_id = rng.randint(0, 0xFFFF)
            fast = template.render(cluster, index, msg_id)
            slow = encode_message(
                make_query(scheme.qname(cluster, index), msg_id=msg_id)
            )
            assert fast == slow, f"({cluster}, {index}, {msg_id})"

    def test_nonstandard_scheme(self):
        scheme = SubdomainScheme(
            sld="probe.example", prefix="zz", cluster_digits=2, index_digits=4
        )
        template = Q1Template(scheme)
        assert template.render(7, 42, 0x1234) == encode_message(
            make_query(scheme.qname(7, 42), msg_id=0x1234)
        )

    def test_wire_size_is_constant(self):
        scheme = SubdomainScheme()
        template = Q1Template(scheme)
        assert template.wire_size == len(template.render(999, 9_999_999, 1))


class TestParseSimpleQuery:
    def test_accepted_queries_decode_identically(self):
        rng = random.Random(31)
        for _ in range(200):
            wire = encode_message(
                make_query(
                    _random_qname(rng),
                    qtype=rng.choice([QueryType.A, QueryType.MX]),
                    msg_id=rng.randint(0, 0xFFFF),
                    recursion_desired=rng.random() < 0.5,
                )
            )
            fast = parse_simple_query(wire)
            assert fast is not None
            assert fast.to_message() == decode_message(wire)
            assert fast.question_wire == wire[12:]
            # A responder echoing the question re-encodes to the same bytes.
            assert encode_message(fast.to_message()) == wire

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda w: w[:2] + b"\x80" + w[3:],        # QR bit set
            lambda w: w[:2] + b"\x08" + w[3:],        # IQUERY opcode
            lambda w: w[:4] + b"\x00\x02" + w[6:],    # qdcount 2
            lambda w: w[:6] + b"\x00\x01" + w[8:],    # ancount 1
            lambda w: w + b"\x00",                    # trailing byte
            lambda w: w[:-1],                         # truncated
            lambda w: w[:12] + b"\xc0\x0c" + w[-4:],  # compressed name
            lambda w: w[:-2] + b"\x00\x63",           # unknown class 99
        ],
    )
    def test_rejects_off_shape_payloads(self, mutate):
        wire = encode_message(make_query("probe.example.net", msg_id=5))
        assert parse_simple_query(wire) is not None
        assert parse_simple_query(bytes(mutate(wire))) is None

    def test_rejects_uppercase_labels(self):
        # The slow path lowercases; the fast path refuses instead.
        wire = bytearray(encode_message(make_query("probe.example.net")))
        wire[13] = ord("P")
        assert parse_simple_query(bytes(wire)) is None

    def test_rejects_root_and_oversized_names(self):
        root = b"\x00\x00\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00" + (
            b"\x00\x00\x01\x00\x01"
        )
        assert parse_simple_query(root) is None
        # 8 labels of 31 bytes: 256 encoded name bytes, over the 254
        # cap the full codec enforces (hand-built: the codec refuses to
        # encode it in the first place).
        oversized = bytearray(b"\x00\x00\x01\x00\x00\x01\x00\x00\x00\x00\x00\x00")
        for _ in range(8):
            oversized += b"\x1f" + b"a" * 31
        oversized += b"\x00\x00\x01\x00\x01"
        assert parse_simple_query(bytes(oversized)) is None

    def test_never_raises_on_junk(self):
        rng = random.Random(2024)
        for _ in range(500):
            payload = bytes(
                rng.randrange(256) for _ in range(rng.randint(0, 64))
            )
            result = parse_simple_query(payload)
            if result is not None:
                assert result.to_message() == decode_message(payload)


def _reference_peek_qname(payload: bytes) -> str | None:
    """The prober's historical inline parser, verbatim."""
    if len(payload) < 14 or payload[4] == 0 and payload[5] == 0:
        return None
    labels = []
    offset = 12
    while offset < len(payload):
        label_len = payload[offset]
        if label_len == 0 or label_len & 0xC0:
            break
        labels.append(
            payload[offset + 1:offset + 1 + label_len].decode(
                "ascii", errors="replace"
            )
        )
        offset += 1 + label_len
    return ".".join(labels).lower()


class TestPeekParsers:
    def test_peek_qname_matches_historical_parser_on_junk(self):
        rng = random.Random(555)
        for _ in range(500):
            payload = bytes(
                rng.randrange(256) for _ in range(rng.randint(0, 48))
            )
            assert peek_qname(payload) == _reference_peek_qname(payload)

    def test_peek_qname_on_real_queries(self):
        wire = encode_message(make_query("OR001.0000042.Example.NET", msg_id=9))
        assert peek_qname(wire) == "or001.0000042.example.net"

    def test_peek_header_and_msg_id(self):
        wire = encode_message(make_query("a.example", msg_id=0xBEEF))
        header = peek_header(wire)
        assert header is not None and header[0] == 0xBEEF
        assert header[2] == 1  # qdcount
        assert peek_msg_id(wire) == 0xBEEF
        assert peek_header(b"\x01") is None
        assert peek_msg_id(b"\x01") is None


class TestPeekSingleAResponse:
    def _response_wire(self, answers, qname="or000.0000001.example.net"):
        # rd=0, matching the upstream queries whose replies this
        # recognizer is pointed at.
        query = make_query(qname, msg_id=0x0102, recursion_desired=False)
        return encode_message(
            make_response(query, answers=answers, aa=True, ra=False)
        )

    def test_recognizes_canonical_shape(self):
        from repro.dnslib.records import AData, ResourceRecord

        qname = "or000.0000001.example.net"
        wire = self._response_wire(
            [ResourceRecord(qname, QueryType.A, ttl=300, data=AData("1.2.3.4"))]
        )
        peeked = peek_single_a_response(wire)
        assert peeked is not None
        msg_id, question_wire, ttl, addr = peeked
        assert msg_id == 0x0102
        assert ttl == 300
        assert addr == bytes([1, 2, 3, 4])
        assert question_wire == encode_message(
            make_query(qname, recursion_desired=False)
        )[12:]

    def test_refuses_other_shapes(self):
        from repro.dnslib.records import AData, CnameData, ResourceRecord

        qname = "or000.0000001.example.net"
        record = ResourceRecord(qname, QueryType.A, ttl=60, data=AData("1.2.3.4"))
        two = self._response_wire([record, record])
        cname = self._response_wire(
            [ResourceRecord(qname, QueryType.CNAME, ttl=60,
                            data=CnameData("other.example.net"))]
        )
        assert peek_single_a_response(two) is None
        assert peek_single_a_response(cname) is None
        query_only = encode_message(make_query(qname))
        assert peek_single_a_response(query_only) is None
