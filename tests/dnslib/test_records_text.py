"""Record text rendering and codec edge cases."""

import pytest

from repro.dnslib.constants import QueryType
from repro.dnslib.records import (
    AData,
    AaaaData,
    CnameData,
    MxData,
    NsData,
    PtrData,
    RawData,
    ResourceRecord,
    SoaData,
    TxtData,
    bytes_to_ipv4,
    ipv4_to_bytes,
)
from repro.dnslib.buffer import DnsWireError


class TestIpv4Helpers:
    def test_roundtrip(self):
        assert bytes_to_ipv4(ipv4_to_bytes("10.20.30.40")) == "10.20.30.40"

    def test_bad_length(self):
        with pytest.raises(DnsWireError):
            bytes_to_ipv4(b"\x01\x02\x03")

    def test_bad_text(self):
        for bad in ("1.2.3", "a.b.c.d", "1.2.3.256"):
            with pytest.raises(DnsWireError):
                ipv4_to_bytes(bad)


class TestToText:
    def test_a(self):
        record = ResourceRecord("www.example.com", QueryType.A, ttl=60,
                                data=AData("1.2.3.4"))
        assert record.to_text() == "www.example.com. 60 IN A 1.2.3.4"

    def test_ns_cname_ptr(self):
        assert NsData("ns1.example.com").to_text() == "ns1.example.com."
        assert CnameData("alias.example.com").to_text() == "alias.example.com."
        assert PtrData("host.example.com").to_text() == "host.example.com."

    def test_mx(self):
        assert MxData(10, "mail.example.com").to_text() == "10 mail.example.com."

    def test_txt(self):
        assert TxtData(("a", "b c")).to_text() == '"a" "b c"'

    def test_soa(self):
        soa = SoaData("ns1.example.com", "hostmaster.example.com",
                      1, 2, 3, 4, 5)
        assert soa.to_text() == (
            "ns1.example.com. hostmaster.example.com. 1 2 3 4 5"
        )

    def test_aaaa(self):
        data = AaaaData(bytes(range(16)))
        text = data.to_text()
        assert text.count(":") == 7

    def test_raw(self):
        raw = RawData(rtype=99, payload=b"\x01\x02")
        assert raw.to_text() == "\\# 2 0102"

    def test_unknown_type_label(self):
        record = ResourceRecord("x.example.com", 99, data=RawData(99, b""))
        assert "TYPE99" in record.to_text()

    def test_root_owner_renders_as_dot(self):
        record = ResourceRecord("", QueryType.A, data=AData("1.2.3.4"))
        assert record.to_text().startswith(". ")


class TestAaaaCodec:
    def test_wire_roundtrip(self):
        from repro.dnslib.message import DnsMessage, DnsHeader, DnsFlags
        from repro.dnslib.wire import decode_message, encode_message

        record = ResourceRecord(
            "v6.example.com", QueryType.AAAA, data=AaaaData(b"\x20\x01" + b"\x00" * 14)
        )
        message = DnsMessage(
            header=DnsHeader(flags=DnsFlags(qr=True)), answers=[record]
        )
        decoded = decode_message(encode_message(message))
        assert decoded.answers[0].data == record.data

    def test_bad_length_rejected(self):
        from repro.dnslib.message import DnsMessage
        from repro.dnslib.wire import encode_message

        with pytest.raises(DnsWireError):
            encode_message(
                DnsMessage(
                    answers=[
                        ResourceRecord(
                            "x.example.com", QueryType.AAAA,
                            data=AaaaData(b"\x01"),
                        )
                    ]
                )
            )
