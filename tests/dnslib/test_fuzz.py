"""Fuzzing the wire codec: hostile bytes must fail cleanly.

The prober parses whatever the Internet throws at it; the decoder's
contract is "return a message or raise DnsWireError" — never crash,
never hang, never raise anything else. These properties back the
tolerant-parsing pipeline the analysis relies on.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnslib.buffer import DnsWireError
from repro.dnslib.message import make_query
from repro.dnslib.wire import decode_message, encode_message
from repro.prober.capture import R2Record, parse_r2


class TestDecodeFuzz:
    @given(st.binary(min_size=0, max_size=600))
    @settings(max_examples=500)
    def test_random_bytes_never_crash(self, data):
        try:
            decode_message(data)
        except DnsWireError:
            pass

    @given(st.binary(min_size=12, max_size=64))
    @settings(max_examples=300)
    def test_parse_r2_total(self, data):
        """The tolerant parser accepts literally anything."""
        view = parse_r2(R2Record(0.0, "9.9.9.9", data))
        assert view.src_ip == "9.9.9.9"

    @given(
        st.binary(min_size=0, max_size=40),
        st.integers(0, 60),
    )
    @settings(max_examples=300)
    def test_truncated_real_packets(self, suffix, cut):
        """Real packets cut short or with junk appended fail cleanly."""
        wire = encode_message(make_query("or000.0000001.ucfsealresearch.net"))
        mutated = wire[:cut] + suffix
        try:
            decode_message(mutated)
        except DnsWireError:
            pass

    @given(st.binary(min_size=12, max_size=300))
    @settings(max_examples=300)
    def test_reencoding_decoded_messages(self, data):
        """Anything that decodes must re-encode without error."""
        try:
            message = decode_message(data)
        except DnsWireError:
            return
        try:
            reencoded = encode_message(message)
        except DnsWireError:
            return  # e.g. a decoded TXT string > 255 octets after merge
        # And the re-encoded form must decode to the same header.
        redecoded = decode_message(reencoded)
        assert redecoded.header.msg_id == message.header.msg_id
        assert redecoded.header.flags == message.header.flags
        assert redecoded.rcode == message.rcode

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF))
    def test_flag_word_roundtrip_total(self, word, _):
        from repro.dnslib.message import DnsFlags

        flags, opcode, rcode = DnsFlags.from_int(word)
        rebuilt = flags.to_int(opcode, rcode)
        # Bits 6 (Z) and 4/5 handling: rebuilt must re-decode identically.
        flags2, opcode2, rcode2 = DnsFlags.from_int(rebuilt)
        assert (flags2, opcode2, rcode2) == (flags, opcode, rcode)
