"""EDNS(0) tests."""

from repro.dnslib.edns import (
    DEFAULT_PAYLOAD_SIZE,
    EdnsOptions,
    add_edns,
    extract_edns,
    max_response_size,
)
from repro.dnslib.message import make_query
from repro.dnslib.wire import decode_message, encode_message


class TestEdns:
    def test_add_and_extract(self):
        query = make_query("example.com")
        add_edns(query, payload_size=4096, dnssec_ok=True)
        options = extract_edns(query)
        assert options.payload_size == 4096
        assert options.dnssec_ok

    def test_idempotent(self):
        query = make_query("example.com")
        add_edns(query)
        add_edns(query)
        assert len(query.additionals) == 1

    def test_survives_wire_roundtrip(self):
        query = make_query("example.com")
        add_edns(query, payload_size=1232)
        decoded = decode_message(encode_message(query))
        options = extract_edns(decoded)
        assert options.payload_size == 1232
        assert options.version == 0

    def test_max_response_size_without_edns(self):
        assert max_response_size(make_query("example.com")) == 512

    def test_max_response_size_with_edns(self):
        query = add_edns(make_query("example.com"), payload_size=4096)
        assert max_response_size(query) == 4096

    def test_tiny_advertised_size_clamped_to_512(self):
        query = add_edns(make_query("example.com"), payload_size=100)
        assert max_response_size(query) == 512

    def test_ttl_packing(self):
        options = EdnsOptions(extended_rcode=3, version=1, dnssec_ok=True)
        ttl = options.to_ttl()
        assert ttl >> 24 & 0xFF == 3
        assert ttl >> 16 & 0xFF == 1
        assert ttl >> 15 & 1 == 1

    def test_default_payload_size(self):
        query = add_edns(make_query("example.com"))
        assert extract_edns(query).payload_size == DEFAULT_PAYLOAD_SIZE
