"""Wire-format codec tests, including compression and corruption."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dnslib.buffer import WireReader, WireWriter
from repro.dnslib.constants import QueryType, Rcode
from repro.dnslib.message import DnsFlags, DnsHeader, DnsMessage, Question, make_query
from repro.dnslib.records import (
    AData,
    CnameData,
    MxData,
    NsData,
    ResourceRecord,
    SoaData,
    TxtData,
)
from repro.dnslib.wire import (
    DnsWireError,
    decode_message,
    decode_name,
    encode_message,
    encode_name,
)

LABEL = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz0123456789-", min_size=1, max_size=15
)
NAME = st.lists(LABEL, min_size=0, max_size=4).map(".".join)
IPV4 = st.tuples(*[st.integers(0, 255)] * 4).map(
    lambda t: ".".join(str(o) for o in t)
)


class TestNameCodec:
    def test_root_name(self):
        assert encode_name("") == b"\x00"
        assert decode_name(b"\x00") == ("", 1)

    def test_simple_name(self):
        wire = encode_name("example.com")
        assert wire == b"\x07example\x03com\x00"
        assert decode_name(wire) == ("example.com", len(wire))

    @given(NAME)
    def test_roundtrip(self, name):
        wire = encode_name(name)
        decoded, offset = decode_name(wire)
        assert decoded == name
        assert offset == len(wire)

    def test_compression_pointer_decodes(self):
        # "example.com" at offset 0, then a pointer to it.
        wire = b"\x07example\x03com\x00" + b"\x03www\xc0\x00"
        name, offset = decode_name(wire, 13)
        assert name == "www.example.com"
        assert offset == len(wire)

    def test_pointer_loop_rejected(self):
        # Pointer at offset 2 pointing back to offset 0 which points to 2.
        wire = b"\xc0\x02\xc0\x00"
        with pytest.raises(DnsWireError):
            decode_name(wire, 0)

    def test_forward_pointer_rejected(self):
        wire = b"\xc0\x02\x00\x00"
        with pytest.raises(DnsWireError):
            decode_name(wire, 0)

    def test_truncated_label_rejected(self):
        with pytest.raises(DnsWireError):
            decode_name(b"\x07exam")

    def test_compression_shrinks_repeated_names(self):
        writer = WireWriter(compress=True)
        writer.write_name("a.example.com")
        writer.write_name("b.example.com")
        compressed = len(writer.getvalue())
        writer2 = WireWriter(compress=False)
        writer2.write_name("a.example.com")
        writer2.write_name("b.example.com")
        assert compressed < len(writer2.getvalue())

    def test_compressed_names_decode_identically(self):
        writer = WireWriter(compress=True)
        names = ["a.example.com", "b.example.com", "example.com", "com"]
        for name in names:
            writer.write_name(name)
        reader = WireReader(writer.getvalue())
        assert [reader.read_name() for _ in names] == names


class TestMessageCodec:
    def test_query_roundtrip(self):
        query = make_query("or000.0000001.ucfsealresearch.net", msg_id=0x1234)
        decoded = decode_message(encode_message(query))
        assert decoded.header.msg_id == 0x1234
        assert decoded.header.flags.rd
        assert not decoded.header.flags.qr
        assert decoded.qname == "or000.0000001.ucfsealresearch.net"
        assert decoded.questions[0].qtype == QueryType.A

    def test_response_with_all_sections(self):
        message = DnsMessage(
            header=DnsHeader(
                msg_id=7,
                flags=DnsFlags(qr=True, aa=True, ra=True, rd=True),
                rcode=Rcode.NOERROR,
            ),
            questions=[Question("www.example.com")],
            answers=[
                ResourceRecord(
                    "www.example.com", QueryType.CNAME, data=CnameData("example.com")
                ),
                ResourceRecord("example.com", QueryType.A, data=AData("1.2.3.4")),
            ],
            authorities=[
                ResourceRecord(
                    "example.com", QueryType.NS, data=NsData("ns1.example.com")
                )
            ],
            additionals=[
                ResourceRecord("ns1.example.com", QueryType.A, data=AData("5.6.7.8"))
            ],
        )
        decoded = decode_message(encode_message(message))
        assert decoded.header.flags.aa and decoded.header.flags.ra
        assert len(decoded.answers) == 2
        assert decoded.answers[0].data == CnameData("example.com")
        assert decoded.answers[1].data == AData("1.2.3.4")
        assert decoded.authorities[0].data == NsData("ns1.example.com")
        assert decoded.additionals[0].data == AData("5.6.7.8")

    def test_empty_question_response_roundtrip(self):
        # Section IV-B4: real resolvers send responses with no question.
        message = DnsMessage(
            header=DnsHeader(
                msg_id=1, flags=DnsFlags(qr=True), rcode=Rcode.SERVFAIL
            )
        )
        decoded = decode_message(encode_message(message))
        assert decoded.questions == []
        assert decoded.qname is None
        assert decoded.rcode == Rcode.SERVFAIL

    def test_flags_word_all_bits(self):
        for field in ("qr", "aa", "tc", "rd", "ra", "ad", "cd"):
            flags = DnsFlags(**{field: True})
            word = flags.to_int(0, 0)
            recovered, _, _ = DnsFlags.from_int(word)
            assert recovered == flags, field

    def test_rcode_roundtrip(self):
        for rcode in Rcode:
            flags = DnsFlags(qr=True)
            word = flags.to_int(0, rcode)
            _, _, recovered = DnsFlags.from_int(word)
            assert recovered == rcode

    def test_short_packet_rejected(self):
        with pytest.raises(DnsWireError):
            decode_message(b"\x00" * 11)

    def test_garbage_counts_rejected(self):
        query = make_query("example.com")
        wire = bytearray(encode_message(query))
        wire[4:6] = b"\x00\x09"  # claim 9 questions
        with pytest.raises(DnsWireError):
            decode_message(bytes(wire))

    @given(
        st.integers(0, 0xFFFF),
        NAME.filter(lambda n: n != ""),
        st.sampled_from(list(QueryType)),
    )
    def test_query_roundtrip_property(self, msg_id, qname, qtype):
        query = make_query(qname, qtype=qtype, msg_id=msg_id)
        decoded = decode_message(encode_message(query))
        assert decoded.header.msg_id == msg_id
        assert decoded.qname == qname
        assert decoded.questions[0].qtype == qtype

    @given(st.lists(IPV4, min_size=0, max_size=8))
    def test_answer_section_roundtrip_property(self, addresses):
        query = make_query("probe.ucfsealresearch.net", msg_id=9)
        message = DnsMessage(
            header=DnsHeader(msg_id=9, flags=DnsFlags(qr=True, ra=True)),
            questions=list(query.questions),
            answers=[
                ResourceRecord(
                    "probe.ucfsealresearch.net", QueryType.A, data=AData(address)
                )
                for address in addresses
            ],
        )
        decoded = decode_message(encode_message(message))
        assert [record.data.address for record in decoded.answers] == addresses


class TestRdataCodecs:
    def test_mx_roundtrip(self):
        record = ResourceRecord(
            "example.com", QueryType.MX, data=MxData(10, "mail.example.com")
        )
        message = DnsMessage(
            header=DnsHeader(flags=DnsFlags(qr=True)),
            questions=[Question("example.com", QueryType.MX)],
            answers=[record],
        )
        decoded = decode_message(encode_message(message))
        assert decoded.answers[0].data == MxData(10, "mail.example.com")

    def test_soa_roundtrip(self):
        soa = SoaData("ns1.example.com", "hostmaster.example.com", 1, 2, 3, 4, 5)
        message = DnsMessage(
            header=DnsHeader(flags=DnsFlags(qr=True)),
            questions=[Question("example.com", QueryType.SOA)],
            answers=[ResourceRecord("example.com", QueryType.SOA, data=soa)],
        )
        decoded = decode_message(encode_message(message))
        assert decoded.answers[0].data == soa

    def test_txt_roundtrip(self):
        txt = TxtData(("hello world", "second string"))
        message = DnsMessage(
            header=DnsHeader(flags=DnsFlags(qr=True)),
            answers=[ResourceRecord("example.com", QueryType.TXT, data=txt)],
        )
        decoded = decode_message(encode_message(message))
        assert decoded.answers[0].data == txt

    def test_unknown_type_roundtrips_raw(self):
        from repro.dnslib.records import RawData

        raw = RawData(rtype=99, payload=b"\x01\x02\x03")
        message = DnsMessage(
            header=DnsHeader(flags=DnsFlags(qr=True)),
            answers=[ResourceRecord("example.com", 99, data=raw)],
        )
        decoded = decode_message(encode_message(message))
        assert decoded.answers[0].data == raw

    def test_invalid_ipv4_rejected(self):
        with pytest.raises(DnsWireError):
            encode_message(
                DnsMessage(
                    answers=[
                        ResourceRecord("x.com", QueryType.A, data=AData("1.2.3"))
                    ]
                )
            )
        with pytest.raises(DnsWireError):
            encode_message(
                DnsMessage(
                    answers=[
                        ResourceRecord("x.com", QueryType.A, data=AData("1.2.3.999"))
                    ]
                )
            )
