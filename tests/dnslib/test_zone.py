"""Zone model and master-file parser tests."""

import pytest

from repro.dnslib.constants import QueryType
from repro.dnslib.records import AData, NsData, ResourceRecord, SoaData
from repro.dnslib.zone import Zone, ZoneError, parse_master_file, serialize_zone

MASTER = """\
$ORIGIN ucfsealresearch.net.
$TTL 600
@   IN SOA ns1 hostmaster (
        2018042601 ; serial
        3600 900 604800 300 )
@   IN NS ns1
ns1 IN A  45.76.1.10
or000.0000000 IN A 45.76.1.10
or000.0000001 IN A 45.76.1.10
alias IN CNAME or000.0000000
mail IN MX 10 mx1
mx1 IN A 45.76.1.11
txt IN TXT "probe marker"
"""


class TestZoneBasics:
    def test_add_and_lookup(self):
        zone = Zone("example.com")
        zone.add_a("www.example.com", "1.2.3.4")
        disposition, records = zone.lookup("www.example.com", QueryType.A)
        assert disposition == "answer"
        assert records[0].data == AData("1.2.3.4")

    def test_out_of_zone_add_rejected(self):
        zone = Zone("example.com")
        with pytest.raises(ZoneError):
            zone.add_a("www.other.com", "1.2.3.4")

    def test_nxdomain(self):
        zone = Zone("example.com")
        zone.add_a("www.example.com", "1.2.3.4")
        disposition, _ = zone.lookup("missing.example.com", QueryType.A)
        assert disposition == "nxdomain"

    def test_nodata(self):
        zone = Zone("example.com")
        zone.add_a("www.example.com", "1.2.3.4")
        disposition, _ = zone.lookup("www.example.com", QueryType.MX)
        assert disposition == "nodata"

    def test_out_of_zone_lookup(self):
        zone = Zone("example.com")
        disposition, _ = zone.lookup("www.other.com", QueryType.A)
        assert disposition == "out-of-zone"

    def test_cname_disposition(self):
        zone = parse_master_file(MASTER)
        disposition, records = zone.lookup(
            "alias.ucfsealresearch.net", QueryType.A
        )
        assert disposition == "cname"
        assert records[0].rtype == QueryType.CNAME

    def test_any_returns_all_types(self):
        zone = Zone("example.com")
        zone.add_a("example.com", "1.2.3.4")
        zone.add(
            ResourceRecord(
                "example.com", QueryType.NS, data=NsData("ns1.example.com")
            )
        )
        disposition, records = zone.lookup("example.com", QueryType.ANY)
        assert disposition == "answer"
        assert {int(r.rtype) for r in records} == {QueryType.A, QueryType.NS}

    def test_counts(self):
        zone = Zone("example.com")
        zone.add_a("a.example.com", "1.1.1.1")
        zone.add_a("a.example.com", "2.2.2.2")
        zone.add_a("b.example.com", "3.3.3.3")
        assert zone.record_count == 3
        assert zone.name_count == 2
        assert "a.example.com" in zone
        assert "z.example.com" not in zone


class TestMasterFile:
    def test_parse_counts(self):
        zone = parse_master_file(MASTER)
        assert zone.origin == "ucfsealresearch.net"
        assert zone.soa() is not None
        assert zone.rrset("ns1.ucfsealresearch.net", QueryType.A)

    def test_soa_fields(self):
        zone = parse_master_file(MASTER)
        soa = zone.soa().data
        assert isinstance(soa, SoaData)
        assert soa.serial == 2018042601
        assert soa.mname == "ns1.ucfsealresearch.net"

    def test_default_ttl_applied(self):
        zone = parse_master_file(MASTER)
        record = zone.rrset("or000.0000000.ucfsealresearch.net", QueryType.A)[0]
        assert record.ttl == 600

    def test_relative_names_qualified(self):
        zone = parse_master_file(MASTER)
        assert zone.rrset("mx1.ucfsealresearch.net", QueryType.A)

    def test_mx_parsed(self):
        zone = parse_master_file(MASTER)
        mx = zone.rrset("mail.ucfsealresearch.net", QueryType.MX)[0].data
        assert mx.preference == 10
        assert mx.exchange == "mx1.ucfsealresearch.net"

    def test_txt_strips_quotes(self):
        zone = parse_master_file(MASTER)
        txt = zone.rrset("txt.ucfsealresearch.net", QueryType.TXT)[0].data
        assert txt.strings == ("probe", "marker")

    def test_origin_argument(self):
        zone = parse_master_file("www IN A 1.2.3.4\n", origin="example.com")
        assert zone.rrset("www.example.com", QueryType.A)

    def test_no_origin_rejected(self):
        with pytest.raises(ZoneError):
            parse_master_file("www IN A 1.2.3.4\n")

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ZoneError):
            parse_master_file("$ORIGIN x.\n@ IN SOA a b ( 1 2 3 4 5\n")

    def test_unsupported_type_rejected(self):
        with pytest.raises(ZoneError):
            parse_master_file("$ORIGIN x.\nfoo IN NAPTR something\n")

    def test_serialize_roundtrip(self):
        zone = parse_master_file(MASTER)
        text = serialize_zone(zone)
        reparsed = parse_master_file(text)
        assert reparsed.record_count == zone.record_count
        assert reparsed.name_count == zone.name_count

    def test_comments_ignored(self):
        zone = parse_master_file(
            "$ORIGIN example.com.\n; full line comment\nwww IN A 1.2.3.4 ; trailing\n"
        )
        assert zone.record_count == 1
