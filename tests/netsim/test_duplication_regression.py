"""Duplicate-delivery regression pin under a seeded fault injector.

The send path schedules a duplicated datagram's extra copy *before*
the primary (it lands on the heap with the lower sequence number but a
later delivery time). Reworking the scheduler or the send fast path
must not perturb that ordering, the RNG draw sequence, or the fault
stats — this test pins all three for a fixed seed, so any change to
the event plumbing that shifts duplicate timing fails loudly instead
of silently reshaping fault-profile tables.
"""

import random

import pytest

from repro.netsim.faults import FaultInjector, FaultPlan
from repro.netsim.latency import FixedLatency
from repro.netsim.network import Network
from repro.netsim.packet import Datagram


def _run_duplicating_network(count=40, seed=11):
    plan = FaultPlan(duplicate_rate=0.5)
    network = Network(seed=seed, latency=FixedLatency(0.02))
    network.attach_faults(FaultInjector(plan, schedule_seed=seed,
                                        blackhole_seed=seed))
    deliveries: list[tuple[float, int]] = []
    network.bind(
        "10.0.0.2", 53,
        lambda dg, net: deliveries.append((net.now, dg.payload[0])),
    )
    for n in range(count):
        network.send(Datagram("10.0.0.1", 4000, "10.0.0.2", 53, bytes([n])))
    network.run()
    return network, deliveries


def _expected_deliveries(count=40, seed=11):
    """Replay the injector's documented RNG protocol independently."""
    rng = random.Random(seed)
    deliveries = []
    for n in range(count):
        # Per datagram: duplicated() draws the rate coin and, on
        # success, the extra delay; then the latency sample (fixed, no
        # draw). The duplicate is scheduled first but delivers later.
        extra = rng.uniform(0.001, 0.05) if rng.random() < 0.5 else None
        deliveries.append((0.02, n))
        if extra is not None:
            deliveries.append((0.02 + extra, n))
    deliveries.sort(key=lambda item: item[0])
    return deliveries


class TestDuplicationPin:
    def test_stats_and_timestamps_are_pinned(self):
        network, deliveries = _run_duplicating_network()
        expected = _expected_deliveries()
        assert network.stats.duplicated == len(expected) - 40
        assert network.stats.delivered == len(expected)
        assert network.stats.sent == 40
        assert [n for _, n in deliveries] == [n for _, n in expected]
        assert deliveries == [
            (pytest.approx(t), n) for t, n in expected
        ]

    def test_duplicate_count_seed_11_regression(self):
        # Frozen observed value: moving any RNG draw in the send path
        # (loss coin, duplicate coin, extra-delay draw, latency sample)
        # changes this count for the same seed.
        network, deliveries = _run_duplicating_network()
        assert network.stats.duplicated == 19
        assert len(deliveries) == 59

    def test_duplicate_delivers_after_primary(self):
        _, deliveries = _run_duplicating_network()
        first_seen: dict[int, float] = {}
        for timestamp, n in deliveries:
            if n in first_seen:
                assert timestamp > first_seen[n]
            else:
                first_seen[n] = timestamp
