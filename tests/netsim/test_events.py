"""Scheduler tests."""

import pytest

from repro.netsim.events import Scheduler


class TestScheduler:
    def test_runs_in_time_order(self):
        scheduler = Scheduler()
        fired = []
        scheduler.at(3.0, lambda: fired.append("c"))
        scheduler.at(1.0, lambda: fired.append("a"))
        scheduler.at(2.0, lambda: fired.append("b"))
        scheduler.run()
        assert fired == ["a", "b", "c"]

    def test_stable_tie_breaking(self):
        scheduler = Scheduler()
        fired = []
        for index in range(10):
            scheduler.at(1.0, lambda i=index: fired.append(i))
        scheduler.run()
        assert fired == list(range(10))

    def test_clock_advances(self):
        scheduler = Scheduler()
        times = []
        scheduler.at(2.5, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == [2.5]
        assert scheduler.now == 2.5

    def test_after_is_relative(self):
        scheduler = Scheduler(start_time=10.0)
        times = []
        scheduler.after(0.5, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == [10.5]

    def test_past_scheduling_rejected(self):
        scheduler = Scheduler(start_time=5.0)
        with pytest.raises(ValueError):
            scheduler.at(4.0, lambda: None)
        with pytest.raises(ValueError):
            scheduler.after(-1.0, lambda: None)

    def test_cancel(self):
        scheduler = Scheduler()
        fired = []
        event = scheduler.at(1.0, lambda: fired.append("x"))
        event.cancel()
        scheduler.run()
        assert fired == []
        assert scheduler.processed == 0

    def test_events_can_schedule_events(self):
        scheduler = Scheduler()
        fired = []

        def first():
            fired.append("first")
            scheduler.after(1.0, lambda: fired.append("second"))

        scheduler.at(1.0, first)
        scheduler.run()
        assert fired == ["first", "second"]
        assert scheduler.now == 2.0

    def test_run_until_stops_at_deadline(self):
        scheduler = Scheduler()
        fired = []
        scheduler.at(1.0, lambda: fired.append(1))
        scheduler.at(2.0, lambda: fired.append(2))
        scheduler.at(3.0, lambda: fired.append(3))
        count = scheduler.run_until(2.0)
        assert count == 2
        assert fired == [1, 2]
        assert scheduler.now == 2.0
        assert scheduler.pending == 1

    def test_run_until_advances_clock_when_idle(self):
        scheduler = Scheduler()
        scheduler.run_until(42.0)
        assert scheduler.now == 42.0

    def test_max_events(self):
        scheduler = Scheduler()
        fired = []
        for index in range(5):
            scheduler.at(float(index), lambda i=index: fired.append(i))
        assert scheduler.run(max_events=3) == 3
        assert fired == [0, 1, 2]

    def test_counters(self):
        scheduler = Scheduler()
        scheduler.at(1.0, lambda: None)
        scheduler.at(2.0, lambda: None)
        assert scheduler.pending == 2
        scheduler.run()
        assert scheduler.pending == 0
        assert scheduler.processed == 2
