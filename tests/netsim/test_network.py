"""Network delivery, taps, loss and latency tests."""

import random

import pytest

from repro.netsim.latency import FixedLatency, LogNormalLatency, UniformLatency
from repro.netsim.loss import BernoulliLoss, NoLoss
from repro.netsim.network import Network, PortInUseError
from repro.netsim.packet import UDP_IP_OVERHEAD, Datagram
from repro.netsim.pcap import PacketTap


def make_datagram(payload=b"hello", src="1.1.1.1", dst="2.2.2.2"):
    return Datagram(src, 40000, dst, 53, payload)


class TestDatagram:
    def test_wire_size(self):
        datagram = make_datagram(b"x" * 100)
        assert datagram.payload_size == 100
        assert datagram.wire_size == 100 + UDP_IP_OVERHEAD

    def test_reply_swaps_endpoints(self):
        datagram = make_datagram()
        reply = datagram.reply(b"resp")
        assert reply.src_ip == "2.2.2.2"
        assert reply.dst_ip == "1.1.1.1"
        assert reply.src_port == 53
        assert reply.dst_port == 40000
        assert reply.payload == b"resp"


class TestDelivery:
    def test_basic_delivery(self):
        network = Network()
        received = []
        network.bind("2.2.2.2", 53, lambda dg, net: received.append(dg))
        network.send(make_datagram())
        network.run()
        assert len(received) == 1
        assert received[0].payload == b"hello"

    def test_reply_path(self):
        network = Network()
        answers = []
        network.bind("2.2.2.2", 53, lambda dg, net: net.send(dg.reply(b"pong")))
        network.bind("1.1.1.1", 40000, lambda dg, net: answers.append(dg))
        network.send(make_datagram(b"ping"))
        network.run()
        assert answers[0].payload == b"pong"

    def test_unbound_destination_counted(self):
        network = Network()
        network.send(make_datagram())
        network.run()
        assert network.stats.unbound == 1
        assert network.stats.delivered == 0

    def test_double_bind_rejected(self):
        network = Network()
        network.bind("2.2.2.2", 53, lambda dg, net: None)
        with pytest.raises(PortInUseError):
            network.bind("2.2.2.2", 53, lambda dg, net: None)

    def test_unbind(self):
        network = Network()
        network.bind("2.2.2.2", 53, lambda dg, net: None)
        network.unbind("2.2.2.2", 53)
        assert not network.is_bound("2.2.2.2", 53)

    def test_latency_orders_delivery(self):
        network = Network(latency=FixedLatency(0.5))
        times = []
        network.bind("2.2.2.2", 53, lambda dg, net: times.append(net.now))
        network.send(make_datagram())
        network.run()
        assert times == [0.5]

    def test_deterministic_for_seed(self):
        def run(seed):
            network = Network(latency=UniformLatency(0.01, 0.3), seed=seed)
            times = []
            network.bind("2.2.2.2", 53, lambda dg, net: times.append(net.now))
            for _ in range(20):
                network.send(make_datagram())
            network.run()
            return times

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_bernoulli_loss_drops_roughly_rate(self):
        network = Network(loss=BernoulliLoss(0.3), seed=1)
        received = []
        network.bind("2.2.2.2", 53, lambda dg, net: received.append(dg))
        for _ in range(1000):
            network.send(make_datagram())
        network.run()
        assert network.stats.lost + len(received) == 1000
        assert 200 < network.stats.lost < 400

    def test_stats_bytes(self):
        network = Network()
        network.bind("2.2.2.2", 53, lambda dg, net: None)
        network.send(make_datagram(b"x" * 10))
        network.run()
        assert network.stats.bytes_sent == 10 + UDP_IP_OVERHEAD
        assert network.stats.bytes_delivered == 10 + UDP_IP_OVERHEAD


class TestTaps:
    def test_tap_captures_both_directions(self):
        network = Network()
        tap = PacketTap("prober")
        network.attach_tap("1.1.1.1", tap)
        network.bind("2.2.2.2", 53, lambda dg, net: net.send(dg.reply(b"pong")))
        network.bind("1.1.1.1", 40000, lambda dg, net: None)
        network.send(make_datagram(b"ping"))
        network.run()
        assert [record.direction for record in tap] == ["out", "in"]
        assert tap.outbound()[0].datagram.payload == b"ping"
        assert tap.inbound()[0].datagram.payload == b"pong"

    def test_spoofed_packet_captured_at_true_origin(self):
        network = Network()
        attacker_tap = PacketTap("attacker")
        victim_tap = PacketTap("victim")
        network.attach_tap("6.6.6.6", attacker_tap)
        network.attach_tap("9.9.9.9", victim_tap)
        spoofed = Datagram("9.9.9.9", 1234, "2.2.2.2", 53, b"spoof")
        network.send(spoofed, origin="6.6.6.6")
        network.run()
        assert len(attacker_tap.outbound()) == 1
        assert victim_tap.outbound() == []

    def test_tap_filter(self):
        network = Network()
        tap = PacketTap("dns-only", predicate=lambda dg: dg.dst_port == 53)
        network.attach_tap("1.1.1.1", tap)
        network.send(make_datagram())
        network.send(Datagram("1.1.1.1", 40000, "2.2.2.2", 80, b"web"))
        network.run()
        assert len(tap) == 1

    def test_detach_tap(self):
        network = Network()
        tap = PacketTap("t")
        network.attach_tap("1.1.1.1", tap)
        network.detach_tap("1.1.1.1", tap)
        network.send(make_datagram())
        network.run()
        assert len(tap) == 0

    def test_on_port(self):
        network = Network()
        tap = PacketTap("t")
        network.attach_tap("1.1.1.1", tap)
        network.send(make_datagram())
        network.run()
        assert len(tap.on_port(53)) == 1
        assert tap.on_port(80) == []

    def test_bad_direction_rejected(self):
        tap = PacketTap("t")
        with pytest.raises(ValueError):
            tap.record(0.0, "sideways", make_datagram())


class TestLatencyModels:
    def test_fixed(self):
        assert FixedLatency(0.1).sample(random.Random(0)) == 0.1

    def test_fixed_rejects_negative(self):
        with pytest.raises(ValueError):
            FixedLatency(-0.1)

    def test_uniform_in_range(self):
        model = UniformLatency(0.01, 0.2)
        rng = random.Random(0)
        for _ in range(100):
            assert 0.01 <= model.sample(rng) <= 0.2

    def test_uniform_rejects_bad_range(self):
        with pytest.raises(ValueError):
            UniformLatency(0.5, 0.1)

    def test_lognormal_capped(self):
        model = LogNormalLatency(median=0.05, sigma=2.0, cap=1.0)
        rng = random.Random(0)
        assert all(model.sample(rng) <= 1.0 for _ in range(1000))

    def test_lognormal_median_roughly_right(self):
        model = LogNormalLatency(median=0.05, sigma=0.5, cap=5.0)
        rng = random.Random(3)
        samples = sorted(model.sample(rng) for _ in range(2001))
        assert 0.03 < samples[1000] < 0.08

    def test_lognormal_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.1, cap=0.05)


class TestLossModels:
    def test_no_loss(self):
        assert not NoLoss().is_lost(random.Random(0))

    def test_bernoulli_bounds(self):
        with pytest.raises(ValueError):
            BernoulliLoss(-0.1)
        with pytest.raises(ValueError):
            BernoulliLoss(1.1)

    def test_bernoulli_extremes(self):
        rng = random.Random(0)
        assert not any(BernoulliLoss(0.0).is_lost(rng) for _ in range(100))
        assert all(BernoulliLoss(1.0).is_lost(rng) for _ in range(100))
