"""Property test: the tuple-heap scheduler against a reference model.

The production :class:`Scheduler` keeps ``(time, seq, callback, arg,
handle)`` tuples in a heap with lazy-deletion cancellation and a live
``pending`` counter. The reference model here is the obvious slow
implementation — a list of dataclass records, sorted per fire, removed
eagerly on cancel. Hypothesis drives both with the same randomized
program of schedules (including exact-tie timestamps), cancellations
(including double-cancels and cancelling already-fired events) and
``call_at`` payload deliveries, and requires identical firing order,
clock, and pending counts throughout.
"""

import dataclasses

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.events import Scheduler


@dataclasses.dataclass
class _ModelEvent:
    time: float
    seq: int
    label: int
    cancelled: bool = False
    fired: bool = False


class _ModelScheduler:
    """Eager, sorted-list reference implementation."""

    def __init__(self) -> None:
        self.now = 0.0
        self.events: list[_ModelEvent] = []
        self._seq = 0

    def at(self, time: float, label: int) -> _ModelEvent:
        event = _ModelEvent(time, self._seq, label)
        self._seq += 1
        self.events.append(event)
        return event

    def cancel(self, event: _ModelEvent) -> None:
        if not event.fired:
            event.cancelled = True

    @property
    def pending(self) -> int:
        return sum(
            1 for e in self.events if not e.cancelled and not e.fired
        )

    def run(self) -> list[int]:
        fired = []
        while True:
            live = [e for e in self.events if not e.cancelled and not e.fired]
            if not live:
                return fired
            event = min(live, key=lambda e: (e.time, e.seq))
            event.fired = True
            self.now = event.time
            fired.append(event.label)


# Times are drawn from a tiny grid so exact ties are common — tie
# order (insertion order) is exactly what the tuple heap must preserve.
_PROGRAM = st.lists(
    st.one_of(
        st.tuples(st.just("at"), st.sampled_from([0.0, 1.0, 1.0, 2.0, 3.0])),
        st.tuples(st.just("call_at"), st.sampled_from([0.0, 1.0, 2.0])),
        st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=40)),
    ),
    min_size=1,
    max_size=40,
)


@given(_PROGRAM)
@settings(max_examples=200, deadline=None)
def test_tuple_heap_matches_reference_model(program):
    scheduler = Scheduler()
    model = _ModelScheduler()
    real_fired: list[int] = []
    handles: list = []
    model_events: list[_ModelEvent] = []
    label = 0
    for op, value in program:
        if op == "at":
            fire = (lambda n: lambda: real_fired.append(n))(label)
            handles.append(scheduler.at(value, fire))
            model_events.append(model.at(value, label))
            label += 1
        elif op == "call_at":
            # call_at carries its argument in the event tuple and
            # returns no handle; the model treats it as uncancellable.
            scheduler.call_at(value, real_fired.append, label)
            model.at(value, label)
            handles.append(None)
            model_events.append(None)
            label += 1
        else:  # cancel the value-th handle, if it exists and is cancellable
            if value < len(handles) and handles[value] is not None:
                handles[value].cancel()
                model.cancel(model_events[value])
                # double cancel must be a no-op on the pending count
                handles[value].cancel()
                model.cancel(model_events[value])
        assert scheduler.pending == model.pending
    model_fired = model.run()
    scheduler.run()
    assert real_fired == model_fired
    assert scheduler.now == model.now
    assert scheduler.pending == 0 == model.pending


@given(_PROGRAM)
@settings(max_examples=100, deadline=None)
def test_cancel_after_fire_is_harmless(program):
    """Cancelling fired handles never corrupts the pending count."""
    scheduler = Scheduler()
    handles = []
    for op, value in program:
        if op == "at":
            handles.append(scheduler.at(value, lambda: None))
    scheduler.run()
    for handle in handles:
        handle.cancel()
        handle.cancel()
    assert scheduler.pending == 0
