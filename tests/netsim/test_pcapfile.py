"""Binary pcap format tests."""

import io
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.packet import Datagram
from repro.netsim.pcapfile import (
    LINKTYPE_RAW,
    PCAP_MAGIC,
    PcapError,
    PcapWriter,
    decode_ipv4_udp,
    encode_ipv4_udp,
    read_pcap,
    read_pcap_file,
    verify_checksums,
    write_pcap_file,
)

IPV4 = st.tuples(*[st.integers(0, 255)] * 4).map(
    lambda t: ".".join(str(o) for o in t)
)
DATAGRAMS = st.builds(
    Datagram,
    src_ip=IPV4,
    src_port=st.integers(0, 65535),
    dst_ip=IPV4,
    dst_port=st.integers(0, 65535),
    payload=st.binary(min_size=0, max_size=200),
)


def sample_datagram(payload=b"\x12\x34" + b"dns payload"):
    return Datagram("132.170.3.14", 31337, "8.8.8.8", 53, payload)


class TestIpv4UdpCodec:
    def test_roundtrip(self):
        datagram = sample_datagram()
        packet = encode_ipv4_udp(datagram)
        assert decode_ipv4_udp(packet) == datagram

    def test_checksums_verify(self):
        packet = encode_ipv4_udp(sample_datagram())
        assert verify_checksums(packet)

    def test_corrupted_checksum_detected(self):
        packet = bytearray(encode_ipv4_udp(sample_datagram()))
        packet[30] ^= 0xFF  # flip a payload byte
        assert not verify_checksums(bytes(packet))

    def test_header_fields(self):
        packet = encode_ipv4_udp(sample_datagram(b"x" * 10))
        assert packet[0] == 0x45                       # IPv4, IHL 5
        assert packet[9] == 17                         # UDP
        total_length = struct.unpack("!H", packet[2:4])[0]
        assert total_length == 20 + 8 + 10

    def test_rejects_short_packet(self):
        with pytest.raises(PcapError):
            decode_ipv4_udp(b"\x45" * 20)

    def test_rejects_non_ipv4(self):
        packet = bytearray(encode_ipv4_udp(sample_datagram()))
        packet[0] = 0x65  # claim IPv6
        with pytest.raises(PcapError):
            decode_ipv4_udp(bytes(packet))

    def test_rejects_non_udp(self):
        packet = bytearray(encode_ipv4_udp(sample_datagram()))
        packet[9] = 6  # claim TCP
        with pytest.raises(PcapError):
            decode_ipv4_udp(bytes(packet))

    @given(DATAGRAMS)
    def test_roundtrip_property(self, datagram):
        packet = encode_ipv4_udp(datagram)
        assert decode_ipv4_udp(packet) == datagram
        assert verify_checksums(packet)


class TestPcapContainer:
    def test_write_read_roundtrip(self):
        stream = io.BytesIO()
        writer = PcapWriter(stream)
        writer.write(1.5, sample_datagram(b"first"))
        writer.write(2.25, sample_datagram(b"second"))
        stream.seek(0)
        packets = list(read_pcap(stream))
        assert len(packets) == 2
        assert packets[0].timestamp == pytest.approx(1.5)
        assert packets[0].datagram.payload == b"first"
        assert packets[1].datagram.payload == b"second"

    def test_global_header(self):
        stream = io.BytesIO()
        PcapWriter(stream)
        header = stream.getvalue()
        magic, major, minor, _, _, snaplen, linktype = struct.unpack(
            "!IHHiIII", header
        )
        assert magic == PCAP_MAGIC
        assert (major, minor) == (2, 4)
        assert linktype == LINKTYPE_RAW

    def test_bad_magic_rejected(self):
        stream = io.BytesIO(b"\x00" * 24)
        with pytest.raises(PcapError):
            list(read_pcap(stream))

    def test_truncated_record_rejected(self):
        stream = io.BytesIO()
        writer = PcapWriter(stream)
        writer.write(0.0, sample_datagram())
        data = stream.getvalue()[:-4]  # chop the packet body
        with pytest.raises(PcapError):
            list(read_pcap(io.BytesIO(data)))

    def test_empty_capture(self):
        stream = io.BytesIO()
        PcapWriter(stream)
        stream.seek(0)
        assert list(read_pcap(stream)) == []

    def test_file_helpers(self, tmp_path):
        path = tmp_path / "capture.pcap"
        pairs = [(0.1, sample_datagram(b"a")), (0.2, sample_datagram(b"b"))]
        write_pcap_file(path, pairs)
        packets = read_pcap_file(path)
        assert [p.datagram.payload for p in packets] == [b"a", b"b"]

    def test_microsecond_rounding(self):
        stream = io.BytesIO()
        writer = PcapWriter(stream)
        writer.write(1.9999999, sample_datagram())
        stream.seek(0)
        (packet,) = read_pcap(stream)
        assert packet.timestamp == pytest.approx(2.0, abs=1e-5)

    @given(st.lists(st.tuples(st.floats(0, 1e6), DATAGRAMS), max_size=10))
    def test_container_roundtrip_property(self, pairs):
        stream = io.BytesIO()
        writer = PcapWriter(stream)
        for timestamp, datagram in pairs:
            writer.write(timestamp, datagram)
        stream.seek(0)
        packets = list(read_pcap(stream))
        assert [p.datagram for p in packets] == [d for _, d in pairs]
