"""Fault-injection layer: loss chains, plans, injectors, wiring."""

import random

import pytest

from repro.netsim.faults import (
    BLACKHOLE_LANE,
    FAULT_LANE,
    FAULT_PROFILES,
    FaultPlan,
    build_injector,
    fault_profile,
)
from repro.netsim.ipv4 import int_to_ip
from repro.netsim.loss import BernoulliLoss, GilbertElliottLoss
from repro.netsim.network import Network
from repro.netsim.packet import Datagram
from repro.netsim.seeds import derive_seed


class TestLossValidation:
    def test_bernoulli_rejects_nan(self):
        with pytest.raises(ValueError, match="rate"):
            BernoulliLoss(float("nan"))

    @pytest.mark.parametrize("rate", [-0.1, 1.5])
    def test_bernoulli_rejects_out_of_range(self, rate):
        with pytest.raises(ValueError):
            BernoulliLoss(rate)

    def test_gilbert_elliott_rejects_nan(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(p_good_to_bad=float("nan"))

    def test_gilbert_elliott_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            GilbertElliottLoss(loss_bad=1.7)


class TestGilbertElliott:
    def test_deterministic_under_seed(self):
        draws = []
        for _ in range(2):
            chain = GilbertElliottLoss(p_good_to_bad=0.1, loss_bad=0.9)
            rng = random.Random(42)
            draws.append([chain.is_lost(rng) for _ in range(500)])
        assert draws[0] == draws[1]

    def test_losses_cluster_in_bursts(self):
        """Same average rate, very different clumping vs Bernoulli."""
        chain = GilbertElliottLoss(
            p_good_to_bad=0.01, p_bad_to_good=0.25,
            loss_good=0.0, loss_bad=0.5,
        )
        rng = random.Random(7)
        outcomes = [chain.is_lost(rng) for _ in range(20_000)]
        # Count loss-after-loss pairs: a bursty chain produces far more
        # of them than an independent coin at the same marginal rate.
        losses = sum(outcomes)
        pairs = sum(
            1 for a, b in zip(outcomes, outcomes[1:]) if a and b
        )
        marginal = losses / len(outcomes)
        independent_pairs = marginal * marginal * len(outcomes)
        assert pairs > 3 * independent_pairs

    def test_stationary_rate_matches_empirical(self):
        chain = GilbertElliottLoss()
        rng = random.Random(1)
        empirical = sum(
            chain.is_lost(rng) for _ in range(50_000)
        ) / 50_000
        assert abs(empirical - chain.stationary_loss_rate) < 0.01


class TestFaultPlanValidation:
    def test_defaults_are_identity(self):
        assert FaultPlan().is_identity
        assert not FaultPlan(burst_loss=True).is_identity
        assert not FaultPlan(blackhole_rate=0.1).is_identity

    def test_rejects_nan_probability(self):
        with pytest.raises(ValueError):
            FaultPlan(duplicate_rate=float("nan"))

    def test_rejects_spike_period_shorter_than_duration(self):
        with pytest.raises(ValueError, match="spike_period"):
            FaultPlan(spike_period=5.0, spike_duration=10.0)

    def test_rejects_speedup_spikes(self):
        with pytest.raises(ValueError, match="spike_factor"):
            FaultPlan(
                spike_period=60.0, spike_duration=5.0, spike_factor=0.5
            )

    def test_rejects_reordering_without_jitter(self):
        with pytest.raises(ValueError, match="reorder_jitter"):
            FaultPlan(reorder_rate=0.1)


class TestBlackholes:
    def test_decision_is_a_property_of_the_address(self):
        """Two injectors with different schedule seeds (different shards)
        agree on every address, because the decision hashes only the
        campaign-global blackhole seed and the address."""
        plan = FaultPlan(blackhole_rate=0.1)
        blackhole_seed = derive_seed(3, BLACKHOLE_LANE)
        shard_a = plan.build(derive_seed(3, FAULT_LANE, 0, 4), blackhole_seed)
        shard_b = plan.build(derive_seed(3, FAULT_LANE, 3, 8), blackhole_seed)
        rng = random.Random(9)
        ips = [int_to_ip(rng.getrandbits(32)) for _ in range(300)]
        assert [shard_a.blackholed(ip) for ip in ips] == [
            shard_b.blackholed(ip) for ip in ips
        ]
        assert any(shard_a.blackholed(ip) for ip in ips)

    def test_exempt_addresses_never_blackholed(self):
        plan = FaultPlan(blackhole_rate=1.0)
        injector = plan.build(1, 2, exempt={"10.0.0.1"})
        assert not injector.blackholed("10.0.0.1")
        assert injector.blackholed("10.0.0.2")

    def test_plan_level_exemptions_merge_with_build_exemptions(self):
        plan = FaultPlan(blackhole_rate=1.0, blackhole_exempt=("10.0.0.3",))
        injector = plan.build(1, 2, exempt={"10.0.0.1"})
        assert not injector.blackholed("10.0.0.3")
        assert not injector.blackholed("10.0.0.1")

    def test_rate_is_approximately_honored(self):
        plan = FaultPlan(blackhole_rate=0.05)
        injector = plan.build(1, 2)
        rng = random.Random(11)
        hits = sum(
            injector.blackholed(int_to_ip(rng.getrandbits(32)))
            for _ in range(5_000)
        )
        assert 0.02 < hits / 5_000 < 0.10


class TestDelayShaping:
    def test_spike_window_multiplies_delay(self):
        plan = FaultPlan(
            spike_period=60.0, spike_duration=10.0, spike_factor=4.0
        )
        injector = plan.build(1, 2)
        assert injector.shape_delay(65.0, 0.1) == pytest.approx(0.4)
        assert injector.shape_delay(30.0, 0.1) == pytest.approx(0.1)

    def test_reorder_jitter_only_adds(self):
        plan = FaultPlan(reorder_rate=1.0, reorder_jitter=0.2)
        injector = plan.build(1, 2)
        delays = [injector.shape_delay(0.0, 0.1) for _ in range(100)]
        assert all(0.1 <= delay <= 0.3 for delay in delays)
        assert len(set(delays)) > 1  # actually jitters


class TestNetworkIntegration:
    def _sent_to(self, network, dst="10.0.0.9"):
        received = []
        network.bind(dst, 53, lambda dgram, net: received.append(dgram))
        network.send(Datagram("10.0.0.1", 1000, dst, 53, b"x"))
        network.run()
        return received

    def test_blackhole_eats_datagram(self):
        injector = FaultPlan(blackhole_rate=1.0).build(1, 2)
        network = Network(seed=0, faults=injector)
        assert self._sent_to(network) == []
        assert network.stats.blackholed == 1
        assert network.stats.lost == 1

    def test_duplicate_delivers_twice(self):
        injector = FaultPlan(duplicate_rate=1.0).build(1, 2)
        network = Network(seed=0, faults=injector)
        assert len(self._sent_to(network)) == 2
        assert network.stats.duplicated == 1
        assert network.stats.delivered == 2

    def test_burst_loss_counts_separately(self):
        injector = FaultPlan(
            burst_loss=True, loss_good=1.0, loss_bad=1.0
        ).build(1, 2)
        network = Network(seed=0, faults=injector)
        assert self._sent_to(network) == []
        assert network.stats.burst_lost == 1
        assert network.stats.lost == 1

    def test_attach_faults_after_construction(self):
        network = Network(seed=0)
        network.attach_faults(FaultPlan(blackhole_rate=1.0).build(1, 2))
        assert self._sent_to(network) == []
        assert network.stats.blackholed == 1


class TestProfiles:
    def test_known_profiles(self):
        assert sorted(FAULT_PROFILES) == ["bursty", "hostile", "none"]
        assert fault_profile("none").plan is None
        assert fault_profile("hostile").plan.blackhole_rate > 0
        assert fault_profile("bursty").retry_max > 0

    def test_unknown_profile_is_a_helpful_error(self):
        with pytest.raises(ValueError, match="hostil"):
            fault_profile("hostil")

    def test_build_injector_identity_profile_is_none(self):
        assert build_injector("none", seed=3, index=0, workers=4) is None

    def test_build_injector_blackholes_stable_across_worker_counts(self):
        serial = build_injector("hostile", seed=3, index=0, workers=1)
        sharded = build_injector("hostile", seed=3, index=2, workers=4)
        rng = random.Random(5)
        ips = [int_to_ip(rng.getrandbits(32)) for _ in range(200)]
        assert [serial.blackholed(ip) for ip in ips] == [
            sharded.blackholed(ip) for ip in ips
        ]
