"""IPv4 arithmetic and Table I exclusion-list tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.ipv4 import (
    Ipv4Block,
    RESERVED_BLOCKS,
    int_to_ip,
    ip_to_int,
    is_private,
    is_probeable,
    is_reserved,
    probeable_space_size,
    reserved_union_size,
)


class TestConversions:
    def test_known_values(self):
        assert ip_to_int("0.0.0.0") == 0
        assert ip_to_int("255.255.255.255") == 0xFFFFFFFF
        assert ip_to_int("1.2.3.4") == 0x01020304
        assert int_to_ip(0x01020304) == "1.2.3.4"

    def test_bad_addresses_rejected(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.0.0.1", "a.b.c.d"):
            with pytest.raises(ValueError):
                ip_to_int(bad)

    def test_out_of_range_int_rejected(self):
        with pytest.raises(ValueError):
            int_to_ip(1 << 32)
        with pytest.raises(ValueError):
            int_to_ip(-1)

    @given(st.integers(0, 0xFFFFFFFF))
    def test_roundtrip(self, value):
        assert ip_to_int(int_to_ip(value)) == value


class TestIpv4Block:
    def test_parse_and_size(self):
        block = Ipv4Block.parse("192.168.0.0/16")
        assert block.size == 65536
        assert "192.168.1.1" in block
        assert "192.169.0.0" not in block

    def test_network_is_masked(self):
        block = Ipv4Block.parse("10.5.6.7/8")
        assert int_to_ip(block.network) == "10.0.0.0"

    def test_slash32(self):
        block = Ipv4Block.parse("255.255.255.255/32")
        assert block.size == 1
        assert "255.255.255.255" in block

    def test_slash0_covers_everything(self):
        block = Ipv4Block.parse("0.0.0.0/0")
        assert block.size == 1 << 32
        assert "8.8.8.8" in block

    def test_bare_address_is_slash32(self):
        assert Ipv4Block.parse("1.2.3.4").size == 1

    def test_str(self):
        assert str(Ipv4Block.parse("172.16.0.0/12")) == "172.16.0.0/12"

    def test_addresses_iteration(self):
        block = Ipv4Block.parse("10.0.0.0/30")
        assert [int_to_ip(a) for a in block.addresses()] == [
            "10.0.0.0",
            "10.0.0.1",
            "10.0.0.2",
            "10.0.0.3",
        ]

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            Ipv4Block.parse("1.2.3.4/33")


class TestTable1:
    def test_sixteen_rows(self):
        assert len(RESERVED_BLOCKS) == 16

    def test_individual_row_sizes_match_paper(self):
        # Per-row counts printed in Table I of the paper.
        expected = {
            "0.0.0.0/8": 16_777_216,
            "10.0.0.0/8": 16_777_216,
            "100.64.0.0/10": 4_194_304,
            "127.0.0.0/8": 16_777_216,
            "169.254.0.0/16": 65_536,
            "172.16.0.0/12": 1_048_576,
            "192.0.0.0/24": 256,
            "192.0.2.0/24": 256,
            "192.88.99.0/24": 256,
            "192.168.0.0/16": 65_536,
            "198.18.0.0/15": 131_072,
            "198.51.100.0/24": 256,
            "203.0.113.0/24": 256,
            "224.0.0.0/4": 268_435_456,
            "240.0.0.0/4": 268_435_456,
            "255.255.255.255/32": 1,
        }
        for row in RESERVED_BLOCKS:
            assert row.size == expected[str(row.block)]

    def test_probeable_space_matches_2018_q1(self):
        # The deduplicated exclusion union leaves exactly the paper's
        # 2018 Q1 packet count (see module docstring for the Table I
        # total discrepancy).
        assert probeable_space_size() == 3_702_258_432

    def test_union_smaller_than_naive_sum(self):
        naive = sum(row.size for row in RESERVED_BLOCKS)
        assert reserved_union_size() == naive - 1  # /32 nested in 240/4

    def test_reserved_membership(self):
        assert is_reserved("10.1.2.3")
        assert is_reserved("224.0.0.1")
        assert is_reserved("255.255.255.255")
        assert is_reserved("192.88.99.7")
        assert not is_reserved("8.8.8.8")
        assert not is_reserved("1.0.0.0")

    def test_probeable_is_complement(self):
        assert is_probeable("8.8.8.8")
        assert not is_probeable("127.0.0.1")

    def test_boundaries(self):
        assert is_reserved("198.18.0.0")
        assert is_reserved("198.19.255.255")
        assert not is_reserved("198.20.0.0")
        assert not is_reserved("198.17.255.255")

    @given(st.integers(0, 0xFFFFFFFF))
    def test_membership_agrees_with_blocks(self, value):
        in_any_block = any(value in row.block for row in RESERVED_BLOCKS)
        assert is_reserved(value) == in_any_block


class TestPrivate:
    def test_rfc1918(self):
        assert is_private("10.0.0.1")
        assert is_private("172.30.1.254")
        assert is_private("192.168.1.1")
        assert not is_private("172.15.0.1")
        assert not is_private("11.0.0.1")
        assert not is_private("8.8.8.8")
