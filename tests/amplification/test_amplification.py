"""Amplification threat-model tests (section II-C)."""

import pytest

from repro.amplification.attack import AmplificationAttack
from repro.amplification.factor import (
    build_rich_zone,
    measure_amplification,
    sweep_qtypes,
)
from repro.dnslib.constants import QueryType
from repro.dnssrv.auth import AuthoritativeServer
from repro.dnssrv.delegation import Delegation
from repro.dnssrv.hierarchy import build_hierarchy
from repro.dnssrv.recursive import RecursiveResolver
from repro.netsim.network import Network

ORIGIN = "amp.example"


def make_server():
    server = AuthoritativeServer("198.51.100.53")
    server.load_zone(build_rich_zone(ORIGIN))
    return server


class TestFactors:
    def test_any_dominates_other_types(self):
        server = make_server()
        sweep = sweep_qtypes(server, ORIGIN)
        by_type = {m.qtype: m.factor for m in sweep}
        assert by_type[QueryType.ANY] == max(by_type.values())
        assert by_type[QueryType.ANY] > by_type[QueryType.A]

    def test_any_factor_substantial(self):
        # Real-world ANY amplification runs tens of x; the rich zone
        # should comfortably exceed 10x with EDNS.
        server = make_server()
        measurement = measure_amplification(server, ORIGIN, QueryType.ANY)
        assert measurement.factor > 10.0

    def test_edns_lifts_512_cap(self):
        server = make_server()
        with_edns = measure_amplification(server, ORIGIN, QueryType.ANY, True)
        without = measure_amplification(server, ORIGIN, QueryType.ANY, False)
        assert without.response_bytes <= 512
        assert without.truncated
        assert with_edns.response_bytes > 512
        assert with_edns.factor > without.factor

    def test_factor_math(self):
        server = make_server()
        m = measure_amplification(server, ORIGIN, QueryType.A)
        assert m.factor == pytest.approx(m.response_bytes / m.query_bytes)

    def test_rich_zone_contents(self):
        zone = build_rich_zone(ORIGIN, a_records=3, mx_records=2, txt_records=1)
        any_records = zone.records_at(ORIGIN)
        types = {int(r.rtype) for r in any_records}
        assert {QueryType.SOA, QueryType.A, QueryType.MX, QueryType.TXT,
                QueryType.NS} <= types


class TestAttack:
    def build_world(self, resolver_count=3):
        network = Network(seed=1)
        hierarchy = build_hierarchy(network, sld=ORIGIN, auth_ip="198.51.100.53")
        hierarchy.auth.load_zone(build_rich_zone(ORIGIN))
        resolvers = []
        for index in range(resolver_count):
            ip = f"100.0.0.{index + 1}"
            resolver = RecursiveResolver(ip, hierarchy.root_servers)
            resolver.attach(network)
            resolvers.append(ip)
        return network, resolvers

    def test_spoofed_attack_amplifies(self):
        network, resolvers = self.build_world()
        attack = AmplificationAttack(
            network,
            attacker_ip="6.6.6.6",
            victim_ip="203.0.113.9",
            resolver_ips=resolvers,
            qname=ORIGIN,
        )
        report = attack.launch(rounds=2)
        assert report.queries_sent == 6
        assert report.victim_packets == 6  # every response hits the victim
        assert report.amplification_factor > 3.0
        assert report.victim_bytes > report.attacker_bytes

    def test_victim_receives_nothing_without_attack(self):
        network, resolvers = self.build_world()
        from repro.netsim.pcap import PacketTap

        tap = PacketTap("victim")
        network.attach_tap("203.0.113.9", tap)
        network.run()
        assert len(tap) == 0

    def test_more_resolvers_more_traffic(self):
        network, resolvers = self.build_world(resolver_count=5)
        attack = AmplificationAttack(
            network, "6.6.6.6", "203.0.113.9", resolvers, ORIGIN
        )
        report = attack.launch(rounds=1)
        network2, resolvers2 = self.build_world(resolver_count=1)
        attack2 = AmplificationAttack(
            network2, "6.6.6.6", "203.0.113.9", resolvers2, ORIGIN
        )
        report2 = attack2.launch(rounds=1)
        assert report.victim_bytes > report2.victim_bytes

    def test_requires_resolvers(self):
        network, _ = self.build_world()
        with pytest.raises(ValueError):
            AmplificationAttack(network, "6.6.6.6", "9.9.9.9", [], ORIGIN)
