"""Shared session-scoped campaign fixtures.

Full campaign runs are the most expensive thing the suite does; the
fixtures here are computed once per session and shared between the
end-to-end campaign tests and the golden-table pins so the suite never
runs the same (seed, scale, year) world twice.
"""

import pytest

from repro.core import Campaign, CampaignConfig

#: Scale of the single-year end-to-end world.
E2E_SCALE = 16384

#: Scale of the two-year temporal-contrast worlds. Finer than the
#: single-year tests so the malicious tail (12,874 / 26,926 R2 at full
#: scale) survives subsampling.
CONTRAST_SCALE = 2048


@pytest.fixture(scope="session")
def result_2018():
    return Campaign(CampaignConfig(year=2018, scale=E2E_SCALE, seed=11)).run()


@pytest.fixture(scope="session")
def both_years():
    from repro.analysis.compare import compare_years

    result_2013 = Campaign(
        CampaignConfig(
            year=2013, scale=CONTRAST_SCALE, seed=11, time_compression=64.0
        )
    ).run()
    result_2018 = Campaign(
        CampaignConfig(
            year=2018, scale=CONTRAST_SCALE, seed=11, time_compression=8.0
        )
    ).run()
    comparison = compare_years(
        result_2013.correctness,
        result_2018.correctness,
        result_2013.estimates,
        result_2018.estimates,
        result_2013.malicious_categories,
        result_2018.malicious_categories,
    )
    return result_2013, result_2018, comparison
