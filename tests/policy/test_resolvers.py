"""Policy enforcement inside the serving paths (simulated networks).

The same PolicyEngine sits in front of the recursive resolver, the
forwarding proxy, and the behavior hosts; these tests pin the verdict →
wire-behavior mapping for each path: REFUSE → REFUSED, NXDOMAIN block →
NXDOMAIN, sinkhole → synthesized A, route → the chosen upstream, and
the rewrite hook on outbound answers.
"""

from repro.dnslib.constants import Rcode
from repro.dnslib.message import make_query
from repro.dnslib.wire import decode_message, encode_message
from repro.dnslib.zone import parse_master_file
from repro.dnssrv.forwarder import ForwardingResolver
from repro.dnssrv.hierarchy import build_hierarchy
from repro.dnssrv.recursive import RecursiveResolver
from repro.netsim.network import Network
from repro.netsim.packet import Datagram
from repro.policy.config import PolicyConfig
from repro.policy.engine import PolicyEngine

ZONE_TEXT = """\
$ORIGIN ucfsealresearch.net.
$TTL 300
@ IN SOA ns1 hostmaster 1 2 3 4 5
www IN A 45.76.1.10
"""

RESOLVER_IP = "93.184.10.1"
CLIENT_IP = "8.8.4.100"
BLOCKED_CLIENT = "192.0.2.66"

SLD = "ucfsealresearch.net"

POLICY = PolicyConfig(
    block_clients=("192.0.2.0/24",),
    block_qnames=(f"blocked.{SLD}",),
    sinkhole_qnames=(f"evil.{SLD}",),
)


def build_recursive(policy_config=POLICY):
    network = Network()
    hierarchy = build_hierarchy(network)
    hierarchy.auth.load_zone(parse_master_file(ZONE_TEXT))
    policy = PolicyEngine(policy_config)
    resolver = RecursiveResolver(
        RESOLVER_IP, hierarchy.root_servers, policy=policy
    )
    resolver.attach(network)
    return network, hierarchy, resolver, policy


def ask(network, qname, client_ip=CLIENT_IP, server_ip=RESOLVER_IP):
    responses = []
    if not network.is_bound(client_ip, 5555):
        network.bind(client_ip, 5555, lambda dg, net: responses.append(dg))
    query = make_query(qname, msg_id=33)
    network.send(
        Datagram(client_ip, 5555, server_ip, 53, encode_message(query))
    )
    network.run()
    return [decode_message(dg.payload) for dg in responses]


class TestRecursiveWithPolicy:
    def test_allowed_query_resolves_normally(self):
        network, hierarchy, resolver, policy = build_recursive()
        (response,) = ask(network, f"www.{SLD}")
        assert response.rcode == Rcode.NOERROR
        assert response.first_a_record().data.address == "45.76.1.10"
        assert policy.stats.allowed == 1

    def test_blocked_client_refused_before_any_recursion(self):
        network, hierarchy, resolver, policy = build_recursive()
        (response,) = ask(network, f"www.{SLD}", client_ip=BLOCKED_CLIENT)
        assert response.rcode == Rcode.REFUSED
        assert response.header.flags.ra
        assert hierarchy.root.queries_served == 0
        assert policy.stats.refused == 1

    def test_blocked_qname_answers_nxdomain_locally(self):
        network, hierarchy, resolver, policy = build_recursive()
        (response,) = ask(network, f"x.blocked.{SLD}")
        assert response.rcode == Rcode.NXDOMAIN
        assert hierarchy.root.queries_served == 0
        assert resolver.stats.nxdomain == 1

    def test_sinkholed_qname_answers_synthesized_a(self):
        network, hierarchy, resolver, policy = build_recursive()
        (response,) = ask(network, f"www.evil.{SLD}")
        assert response.rcode == Rcode.NOERROR
        record = response.first_a_record()
        assert record.data.address == POLICY.sinkhole_ip
        assert record.ttl == POLICY.sinkhole_ttl
        assert hierarchy.root.queries_served == 0

    def test_zone_route_steers_resolution_to_the_target_server(self):
        network = Network()
        hierarchy = build_hierarchy(network)
        hierarchy.auth.load_zone(parse_master_file(ZONE_TEXT))
        # Route the SLD straight at the authoritative server: the root
        # and TLD tiers must never see the query.
        policy = PolicyEngine(
            PolicyConfig(zone_routes=((SLD, hierarchy.auth.ip),))
        )
        resolver = RecursiveResolver(
            RESOLVER_IP, hierarchy.root_servers, policy=policy
        )
        resolver.attach(network)
        (response,) = ask(network, f"www.{SLD}")
        assert response.rcode == Rcode.NOERROR
        assert response.first_a_record().data.address == "45.76.1.10"
        assert hierarchy.root.queries_served == 0
        assert hierarchy.tld.queries_served == 0
        assert policy.stats.routed == 1

    def test_nxdomain_rewrite_applies_to_resolved_answers(self):
        network, hierarchy, resolver, policy = build_recursive(
            PolicyConfig(rewrite_nxdomain_to="198.51.100.99")
        )
        (response,) = ask(network, f"no-such-name.{SLD}")
        assert response.rcode == Rcode.NOERROR
        assert response.first_a_record().data.address == "198.51.100.99"
        assert policy.stats.rewritten == 1


class TestForwarderWithPolicy:
    UPSTREAM_IP = "93.184.10.1"
    PROXY_IP = "201.10.0.5"

    def build_world(self, policy_config=POLICY):
        network = Network()
        hierarchy = build_hierarchy(network)
        hierarchy.auth.load_zone(parse_master_file(ZONE_TEXT))
        upstream = RecursiveResolver(self.UPSTREAM_IP, hierarchy.root_servers)
        upstream.attach(network)
        policy = PolicyEngine(policy_config)
        proxy = ForwardingResolver(
            self.PROXY_IP, self.UPSTREAM_IP, policy=policy
        )
        proxy.attach(network)
        return network, proxy, policy

    def ask(self, network, qname, client_ip=CLIENT_IP):
        return ask(network, qname, client_ip, server_ip=self.PROXY_IP)

    def test_blocked_client_refused_without_forwarding(self):
        network, proxy, policy = self.build_world()
        (response,) = self.ask(network, f"www.{SLD}", BLOCKED_CLIENT)
        assert response.rcode == Rcode.REFUSED
        assert proxy.forwarded == 0
        assert proxy.answered_locally == 1

    def test_blocked_qname_nxdomain_at_the_proxy(self):
        network, proxy, policy = self.build_world()
        (response,) = self.ask(network, f"blocked.{SLD}")
        assert response.rcode == Rcode.NXDOMAIN
        assert proxy.forwarded == 0

    def test_sinkholed_qname_answered_at_the_proxy(self):
        network, proxy, policy = self.build_world()
        (response,) = self.ask(network, f"evil.{SLD}")
        assert response.first_a_record().data.address == POLICY.sinkhole_ip
        assert proxy.forwarded == 0

    def test_allowed_query_still_relays(self):
        network, proxy, policy = self.build_world()
        (response,) = self.ask(network, f"www.{SLD}")
        assert response.first_a_record().data.address == "45.76.1.10"
        assert proxy.forwarded == 1
        assert proxy.relayed == 1

    def test_zone_route_picks_the_alternate_upstream(self):
        network = Network()
        hierarchy = build_hierarchy(network)
        hierarchy.auth.load_zone(parse_master_file(ZONE_TEXT))
        main_upstream = RecursiveResolver(
            self.UPSTREAM_IP, hierarchy.root_servers
        )
        main_upstream.attach(network)
        alternate = RecursiveResolver("93.184.10.2", hierarchy.root_servers)
        alternate.attach(network)
        policy = PolicyEngine(
            PolicyConfig(zone_routes=((SLD, "93.184.10.2"),))
        )
        proxy = ForwardingResolver(
            self.PROXY_IP, self.UPSTREAM_IP, policy=policy
        )
        proxy.attach(network)
        (response,) = self.ask(network, f"www.{SLD}")
        assert response.rcode == Rcode.NOERROR
        assert main_upstream.stats.client_queries == 0
        assert alternate.stats.client_queries == 1

    def test_relayed_answers_pass_the_rewrite_hook(self):
        network, proxy, policy = self.build_world(
            PolicyConfig(rewrite_nxdomain_to="198.51.100.99")
        )
        (response,) = self.ask(network, f"no-such-name.{SLD}")
        assert response.rcode == Rcode.NOERROR
        assert response.first_a_record().data.address == "198.51.100.99"
        assert proxy.relayed == 1
