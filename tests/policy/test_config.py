"""PolicyConfig: validation, normalization, documents, flag merging."""

import json

import pytest

from repro.policy.config import (
    DEFAULT_SINKHOLE_IP,
    PolicyConfig,
    PolicyError,
    build_policy,
    load_policy_file,
    parse_zone_route,
    threat_feed_policy,
)
from repro.threatintel.cymon import CymonDatabase, ThreatCategory


class TestValidation:
    def test_qnames_are_normalized(self):
        config = PolicyConfig(block_qnames=("BAD.Example.",))
        assert config.block_qnames == ("bad.example",)

    def test_countries_uppercased_prefixes_lowercased(self):
        config = PolicyConfig(
            block_countries=("cn", "Ru"), block_label_prefixes=("WT",)
        )
        assert config.block_countries == ("CN", "RU")
        assert config.block_label_prefixes == ("wt",)

    def test_bad_cidr_rejected(self):
        with pytest.raises(PolicyError, match="CIDR"):
            PolicyConfig(block_clients=("300.0.0.0/8",))

    def test_sinkhole_ip_must_be_host_address(self):
        with pytest.raises(PolicyError, match="host address"):
            PolicyConfig(sinkhole_ip="10.0.0.0/8")

    def test_negative_ttl_rejected(self):
        with pytest.raises(PolicyError, match="non-negative"):
            PolicyConfig(sinkhole_ttl=-1)

    def test_is_empty(self):
        assert PolicyConfig().is_empty
        assert not PolicyConfig(block_qnames=("x.test",)).is_empty
        # Ad qnames without an address can never fire: still empty.
        assert PolicyConfig(inject_ad_qnames=("ads.test",)).is_empty
        assert not PolicyConfig(
            inject_ad_qnames=("ads.test",), inject_ad_ip="198.51.100.9"
        ).is_empty


class TestDocuments:
    def test_round_trip(self):
        config = PolicyConfig(
            block_clients=("192.0.2.0/24",),
            block_qnames=("bad.example",),
            zone_routes=(("corp.example", "10.9.9.9"),),
            rewrite_nxdomain_to="198.51.100.1",
        )
        assert PolicyConfig.from_document(config.to_document()) == config

    def test_unknown_keys_rejected(self):
        with pytest.raises(PolicyError, match="unknown policy keys: blocc"):
            PolicyConfig.from_document({"blocc": ["x"]})

    def test_zone_routes_accept_a_mapping(self):
        config = PolicyConfig.from_document(
            {"zone_routes": {"b.test": "10.0.0.2", "a.test": "10.0.0.1"}}
        )
        assert config.zone_routes == (
            ("a.test", "10.0.0.1"),
            ("b.test", "10.0.0.2"),
        )

    def test_load_policy_file(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text(json.dumps({"block_qnames": ["evil.test"]}))
        assert load_policy_file(path).block_qnames == ("evil.test",)

    def test_load_bad_json_raises_policy_error(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text("{not json")
        with pytest.raises(PolicyError, match="cannot load"):
            load_policy_file(path)


class TestZoneRoute:
    def test_parse(self):
        assert parse_zone_route("Corp.Example=10.1.2.3") == (
            "corp.example",
            "10.1.2.3",
        )

    @pytest.mark.parametrize("spec", ["corp.example", "=10.0.0.1", "zone="])
    def test_malformed_specs_rejected(self, spec):
        with pytest.raises(PolicyError):
            parse_zone_route(spec)


class TestBuildPolicy:
    def test_nothing_configured_returns_none(self):
        assert build_policy() is None

    def test_block_items_classified_by_shape(self):
        config = build_policy(
            block=("192.0.2.0/24", "198.51.100.7", "bad.example")
        )
        assert config.block_clients == ("192.0.2.0/24", "198.51.100.7")
        assert config.block_qnames == ("bad.example",)

    def test_flags_merge_on_top_of_the_policy_file(self, tmp_path):
        path = tmp_path / "policy.json"
        path.write_text(json.dumps({"block_qnames": ["from-file.test"]}))
        config = build_policy(
            policy_file=str(path),
            block=("from-flag.test",),
            sinkhole=("sink.test",),
            zone_route=("corp.test=10.2.2.2",),
            sinkhole_ip="198.51.100.53",
        )
        assert config.block_qnames == ("from-file.test", "from-flag.test")
        assert config.sinkhole_qnames == ("sink.test",)
        assert config.zone_routes == (("corp.test", "10.2.2.2"),)
        assert config.sinkhole_ip == "198.51.100.53"

    def test_default_sinkhole_ip(self):
        assert build_policy(sinkhole=("x.test",)).sinkhole_ip == (
            DEFAULT_SINKHOLE_IP
        )


class TestThreatFeedPolicy:
    def build_feed(self):
        cymon = CymonDatabase()
        cymon.add_reports("203.0.113.9", ThreatCategory.BOTNET)
        cymon.add_reports("203.0.113.5", ThreatCategory.SPAM, count=2)
        cymon.add_reports("203.0.113.2", ThreatCategory.MALWARE)
        return cymon

    def test_reported_addresses_become_client_blocks_sorted(self):
        config = threat_feed_policy(self.build_feed())
        assert config.block_clients == (
            "203.0.113.2",
            "203.0.113.5",
            "203.0.113.9",
        )

    def test_category_filter(self):
        config = threat_feed_policy(
            self.build_feed(), categories=("Botnet", "malware")
        )
        assert config.block_clients == ("203.0.113.2", "203.0.113.9")

    def test_base_blocks_kept_without_duplicates(self):
        base = PolicyConfig(block_clients=("203.0.113.5", "10.0.0.0/8"))
        config = threat_feed_policy(self.build_feed(), base=base)
        assert config.block_clients == (
            "203.0.113.5",
            "10.0.0.0/8",
            "203.0.113.2",
            "203.0.113.9",
        )
