"""PolicyEngine: precedence, verdicts, rewriting, decision accounting."""

import pytest

from repro.dnslib.constants import Rcode
from repro.dnslib.message import make_query, make_response
from repro.dnslib.records import AData, ResourceRecord
from repro.policy.config import PolicyConfig
from repro.policy.engine import PolicyAction, PolicyEngine
from repro.policy.report import DECISIONS_HEADER, render_policy_decisions
from repro.threatintel.geo import GeoDatabase

CLIENT = "8.8.4.100"


def engine(**kwargs):
    geo = kwargs.pop("geo", None)
    return PolicyEngine(PolicyConfig(**kwargs), geo=geo)


class TestPrecedence:
    def test_default_is_allow(self):
        decision = engine().evaluate_query(CLIENT, "www.example.net")
        assert decision.action is PolicyAction.ALLOW
        assert decision.rule == "default"

    def test_allow_list_beats_every_block(self):
        eng = engine(
            allow_clients=("8.8.4.0/24",),
            block_clients=("8.8.0.0/16",),
            block_qnames=("example.net",),
        )
        decision = eng.evaluate_query(CLIENT, "www.example.net")
        assert decision.action is PolicyAction.ALLOW
        assert decision.rule == "allow-client:8.8.4.0/24"

    def test_client_block_beats_qname_rules(self):
        eng = engine(
            block_clients=("8.8.4.0/24",), sinkhole_qnames=("example.net",)
        )
        decision = eng.evaluate_query(CLIENT, "www.example.net")
        assert decision.action is PolicyAction.REFUSE

    def test_block_qname_beats_sinkhole(self):
        eng = engine(
            block_qnames=("example.net",), sinkhole_qnames=("example.net",)
        )
        assert (
            eng.evaluate_query(CLIENT, "www.example.net").action
            is PolicyAction.NXDOMAIN
        )

    def test_sinkhole_carries_target(self):
        eng = engine(sinkhole_qnames=("example.net",))
        decision = eng.evaluate_query(CLIENT, "www.example.net")
        assert decision.action is PolicyAction.SINKHOLE
        assert decision.target == eng.config.sinkhole_ip


class TestMatching:
    def test_suffix_match_is_label_aligned(self):
        eng = engine(block_qnames=("example.net",))
        blocked = eng.evaluate_query(CLIENT, "deep.sub.example.net")
        assert blocked.action is PolicyAction.NXDOMAIN
        # "notexample.net" shares the string suffix but not the zone.
        assert (
            eng.evaluate_query(CLIENT, "notexample.net").action
            is PolicyAction.ALLOW
        )

    def test_qname_comparison_is_case_and_dot_insensitive(self):
        eng = engine(block_qnames=("example.net",))
        assert (
            eng.evaluate_query(CLIENT, "WWW.Example.NET.").action
            is PolicyAction.NXDOMAIN
        )

    def test_label_prefix_matches_first_label_only(self):
        eng = engine(block_label_prefixes=("wt",))
        assert (
            eng.evaluate_query(CLIENT, "wt123.example.net").action
            is PolicyAction.NXDOMAIN
        )
        assert (
            eng.evaluate_query(CLIENT, "www.wt123.example.net").action
            is PolicyAction.ALLOW
        )

    def test_none_qname_skips_qname_rules_not_client_rules(self):
        eng = engine(
            block_qnames=("example.net",), block_clients=("8.8.4.0/24",)
        )
        assert eng.evaluate_query(CLIENT, None).action is PolicyAction.REFUSE
        assert (
            engine(block_qnames=("example.net",))
            .evaluate_query(CLIENT, None)
            .action
            is PolicyAction.ALLOW
        )


class TestRouting:
    def test_longest_zone_wins_regardless_of_config_order(self):
        routes = (
            ("example.net", "10.0.0.1"),
            ("corp.example.net", "10.0.0.2"),
        )
        for ordering in (routes, routes[::-1]):
            eng = engine(zone_routes=ordering)
            decision = eng.evaluate_query(CLIENT, "www.corp.example.net")
            assert decision.action is PolicyAction.ROUTE
            assert decision.target == "10.0.0.2"
            assert (
                eng.evaluate_query(CLIENT, "www.example.net").target
                == "10.0.0.1"
            )


class TestGeoPredicates:
    def build_geo(self):
        geo = GeoDatabase()
        geo.add("8.8.0.0/16", "US", asn=15169)
        geo.add("77.88.0.0/16", "RU", asn=13238)
        return geo

    def test_blocked_country_refused(self):
        eng = engine(block_countries=("ru",), geo=self.build_geo())
        decision = eng.evaluate_query("77.88.8.8", "www.example.net")
        assert decision.action is PolicyAction.REFUSE
        assert decision.rule == "block-country:RU"
        assert (
            eng.evaluate_query(CLIENT, "www.example.net").action
            is PolicyAction.ALLOW
        )

    def test_blocked_asn_refused(self):
        eng = engine(block_asns=(15169,), geo=self.build_geo())
        assert (
            eng.evaluate_query("8.8.8.8", "x.test").action
            is PolicyAction.REFUSE
        )

    def test_geo_rules_inert_without_a_database(self):
        eng = engine(block_countries=("RU",))
        assert (
            eng.evaluate_query("77.88.8.8", "x.test").action
            is PolicyAction.ALLOW
        )

    def test_unregistered_client_not_refused(self):
        eng = engine(block_countries=("RU",), geo=self.build_geo())
        assert (
            eng.evaluate_query("203.0.113.1", "x.test").action
            is PolicyAction.ALLOW
        )


class TestRewriting:
    def test_nxdomain_rewritten_to_configured_address(self):
        eng = engine(rewrite_nxdomain_to="198.51.100.99")
        response = make_response(
            make_query("typo.example.net", msg_id=7), rcode=Rcode.NXDOMAIN
        )
        rewritten = eng.rewrite_response(response)
        assert rewritten.header.rcode == Rcode.NOERROR
        assert rewritten.first_a_record().data.address == "198.51.100.99"
        assert rewritten.header.msg_id == 7
        assert eng.stats.rewritten == 1

    def test_ad_injection_replaces_matching_answers(self):
        eng = engine(
            inject_ad_qnames=("ads.example.net",),
            inject_ad_ip="198.51.100.10",
        )
        response = make_response(
            make_query("img.ads.example.net"),
            answers=[
                ResourceRecord("img.ads.example.net", 1, data=AData("1.2.3.4"))
            ],
        )
        rewritten = eng.rewrite_response(response)
        assert rewritten.first_a_record().data.address == "198.51.100.10"

    def test_no_match_returns_the_same_object(self):
        eng = engine(
            rewrite_nxdomain_to="198.51.100.99",
            inject_ad_qnames=("ads.example.net",),
            inject_ad_ip="198.51.100.10",
        )
        response = make_response(make_query("www.example.net"))
        assert eng.rewrite_response(response) is response
        assert eng.stats.rewritten == 0


class TestAccounting:
    def test_stats_and_decision_rows(self):
        eng = engine(
            block_clients=("192.0.2.0/24",), sinkhole_qnames=("evil.test",)
        )
        eng.evaluate_query("192.0.2.9", "a.test")
        eng.evaluate_query(CLIENT, "www.evil.test")
        eng.evaluate_query(CLIENT, "ok.test")
        eng.evaluate_query(CLIENT, "ok.test")
        stats = eng.stats
        assert (stats.evaluated, stats.refused, stats.sinkholed) == (4, 1, 1)
        assert stats.allowed == 2
        assert eng.decision_rows() == [
            ("block-client:192.0.2.0/24", "refuse", 1),
            ("default", "allow", 2),
            ("sinkhole:evil.test", "sinkhole", 1),
        ]

    def test_render_decisions(self):
        eng = engine(block_qnames=("bad.test",))
        eng.evaluate_query(CLIENT, "x.bad.test")
        text = render_policy_decisions(eng)
        assert text.startswith(DECISIONS_HEADER)
        assert "block-qname:bad.test" in text
        assert "evaluated=1" in text

    def test_render_without_traffic(self):
        text = render_policy_decisions(engine(block_qnames=("bad.test",)))
        assert "(no queries evaluated)" in text

    @pytest.mark.parametrize("action", ["refuse", "nxdomain", "sinkhole"])
    def test_every_decision_is_deterministic(self, action):
        kwargs = {
            "refuse": dict(block_clients=("8.8.4.0/24",)),
            "nxdomain": dict(block_qnames=("example.net",)),
            "sinkhole": dict(sinkhole_qnames=("example.net",)),
        }[action]
        first = engine(**kwargs).evaluate_query(CLIENT, "www.example.net")
        second = engine(**kwargs).evaluate_query(CLIENT, "www.example.net")
        assert first == second
