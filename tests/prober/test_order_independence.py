"""Capture-order independence of the analysis pipeline.

The paper's offline pipeline (and our sharded merge) must not care in
which order R2 packets landed in the pcap: flows join on the qname
key, and every table is an aggregate over flow *content*. These tests
shuffle the captured record list and assert that every rendered table
survives byte for byte.
"""

import dataclasses
import random

import pytest

from repro.core import Campaign, CampaignConfig
from repro.prober.capture import join_flows, merge_flow_sets


@pytest.fixture(scope="module")
def campaign_result():
    return Campaign(
        CampaignConfig(year=2018, scale=65536, seed=5, record_sent_log=True)
    ).run()


def _report_with_records(result, records):
    """Re-join shuffled records and re-run the full analysis."""
    campaign = Campaign(result.config)
    capture = dataclasses.replace(result.capture, r2_records=records)
    flow_set = join_flows(records, result.hierarchy.auth)
    rebuilt = campaign._analyze(
        result.population,
        result.hierarchy,
        result.network,
        result.software_map,
        result.dnssec_validators,
        capture,
        flow_set,
        query_log=result.query_log,
    )
    return rebuilt.report()


class TestShuffledCapture(object):
    @pytest.mark.parametrize("shuffle_seed", [1, 2, 3])
    def test_every_table_unchanged(self, campaign_result, shuffle_seed):
        baseline = campaign_result.report()
        records = list(campaign_result.capture.r2_records)
        random.Random(shuffle_seed).shuffle(records)
        assert _report_with_records(campaign_result, records) == baseline

    def test_reversed_capture_unchanged(self, campaign_result):
        baseline = campaign_result.report()
        records = list(reversed(campaign_result.capture.r2_records))
        assert _report_with_records(campaign_result, records) == baseline


class TestShuffledQueryLog(object):
    def test_query_log_order_irrelevant(self, campaign_result):
        baseline = campaign_result.report()
        log = list(campaign_result.query_log)
        random.Random(9).shuffle(log)
        campaign = Campaign(campaign_result.config)
        flow_set = join_flows(
            campaign_result.capture.r2_records, campaign_result.hierarchy.auth
        )
        rebuilt = campaign._analyze(
            campaign_result.population,
            campaign_result.hierarchy,
            campaign_result.network,
            campaign_result.software_map,
            campaign_result.dnssec_validators,
            campaign_result.capture,
            flow_set,
            query_log=log,
        )
        assert rebuilt.report() == baseline


class TestMergeOrderIndependence(object):
    def test_flow_set_merge_order_irrelevant(self, campaign_result):
        records = campaign_result.capture.r2_records
        auth = campaign_result.hierarchy.auth
        half = len(records) // 2
        first = join_flows(records[:half])
        second = join_flows(records[half:])
        # Q2/R1 joins ride along with whichever part owns the qname.
        whole = join_flows(records, auth)
        forward = merge_flow_sets([first, second])
        backward = merge_flow_sets([second, first])
        assert forward.views == backward.views
        assert forward.unjoinable == backward.unjoinable
        assert set(forward.flows) == set(whole.flows)

    def test_merge_rejects_colliding_qnames(self, campaign_result):
        records = campaign_result.capture.r2_records
        flow_set = join_flows(records)
        with pytest.raises(ValueError):
            merge_flow_sets([flow_set, flow_set])
