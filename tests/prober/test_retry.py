"""Q1 retransmission policy: validation, recovery, accounting."""

import pytest

from repro.dnssrv.hierarchy import build_hierarchy
from repro.netsim.ipv4 import int_to_ip
from repro.netsim.network import Network
from repro.prober.probe import ProbeConfig, Prober, RetryPolicy, merge_captures
from repro.prober.zmap import probe_order
from repro.resolvers.behavior import AnswerKind, BehaviorSpec, ResponseMode
from repro.resolvers.host import BehaviorHost


def std_spec():
    return BehaviorSpec(
        name="std", mode=ResponseMode.RESOLVE, ra=True, aa=False,
        answer_kind=AnswerKind.CORRECT,
    )


def scan(specs_by_offset, q1_target=1, injector=None, **config_overrides):
    """Deploy hosts at probe-order offsets, optionally inject faults, scan."""
    network = Network(seed=0)
    hierarchy = build_hierarchy(network)
    addresses = list(probe_order(seed=0, limit=q1_target))
    for offset, spec in specs_by_offset.items():
        host = BehaviorHost(int_to_ip(addresses[offset]), spec, hierarchy.auth.ip)
        host.attach(network)
    if injector is not None:
        network.attach_faults(injector)
    config = ProbeConfig(
        q1_target=q1_target, rate_pps=50.0, cluster_size=100, seed=0,
        **config_overrides,
    )
    prober = Prober(network, hierarchy.auth, config)
    return network, addresses, prober.run()


class DropFirstProbeTo:
    """A minimal fault injector: eat the first datagram to ``target``."""

    def __init__(self, target):
        self.target = target
        self.drops = 0

    def blackholed(self, dst_ip):
        if dst_ip == self.target and self.drops == 0:
            self.drops += 1
            return True
        return False

    def dropped(self):
        return False

    def shape_delay(self, now, delay):
        return delay

    def duplicated(self):
        return None


class TestRetryPolicyValidation:
    def test_disabled_by_default(self):
        policy = RetryPolicy()
        assert not policy.enabled
        assert RetryPolicy(max_retries=1).enabled

    def test_rejects_negative_max_retries(self):
        with pytest.raises(ValueError, match="max_retries"):
            RetryPolicy(max_retries=-1)

    @pytest.mark.parametrize("timeout", [0.0, -1.0, float("nan")])
    def test_rejects_bad_timeout(self, timeout):
        with pytest.raises(ValueError, match="timeout"):
            RetryPolicy(timeout=timeout)

    @pytest.mark.parametrize("backoff", [0.5, float("nan")])
    def test_rejects_bad_backoff(self, backoff):
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff=backoff)

    def test_schedule_arithmetic(self):
        policy = RetryPolicy(max_retries=2, timeout=1.5, backoff=2.0)
        assert policy.delay_for_attempt(0) == 1.5
        assert policy.delay_for_attempt(1) == 3.0
        assert policy.last_retransmission_offset() == pytest.approx(4.5)
        assert policy.total_horizon() == pytest.approx(10.5)


class TestProbeConfigValidation:
    @pytest.mark.parametrize("window", [0.0, -2.0, float("nan")])
    def test_rejects_bad_response_window(self, window):
        with pytest.raises(ValueError, match="response_window"):
            ProbeConfig(q1_target=1, rate_pps=50.0, response_window=window)

    def test_rejects_retry_schedule_outliving_window(self):
        # Last retransmission at 2 + 4 + 8 = 14s, far past the 5s
        # window after which the subdomain may be reused.
        with pytest.raises(ValueError, match="response window"):
            ProbeConfig(
                q1_target=1,
                rate_pps=50.0,
                retry=RetryPolicy(max_retries=3, timeout=2.0, backoff=2.0),
            )

    def test_default_retry_fits_default_window(self):
        ProbeConfig(
            q1_target=1, rate_pps=50.0, retry=RetryPolicy(max_retries=2)
        )  # must not raise


class TestRetryBehavior:
    def test_retransmission_recovers_a_lost_probe(self):
        addresses = list(probe_order(seed=0, limit=1))
        injector = DropFirstProbeTo(int_to_ip(addresses[0]))
        network, _, capture = scan(
            {0: std_spec()}, injector=injector,
            retry=RetryPolicy(max_retries=2),
        )
        assert injector.drops == 1
        assert capture.r2_count == 1
        assert capture.q1_sent == 1  # Table II counts targets, not datagrams
        assert capture.retries_sent == 1
        assert capture.retries_exhausted == 0
        assert capture.retry_bytes > 0

    def test_without_retry_the_same_loss_is_fatal(self):
        addresses = list(probe_order(seed=0, limit=1))
        injector = DropFirstProbeTo(int_to_ip(addresses[0]))
        _, _, capture = scan({0: std_spec()}, injector=injector)
        assert capture.r2_count == 0
        assert capture.retries_sent == 0

    def test_unanswered_target_exhausts_retries(self):
        _, _, capture = scan({}, retry=RetryPolicy(max_retries=2))
        assert capture.r2_count == 0
        assert capture.retries_sent == 2
        assert capture.retries_exhausted == 1

    def test_answered_probes_never_retransmit(self):
        _, _, with_retry = scan(
            {0: std_spec()}, retry=RetryPolicy(max_retries=2)
        )
        _, _, without = scan({0: std_spec()})
        assert with_retry.retries_sent == 0
        assert with_retry.retries_exhausted == 0
        # Cancelled retry timers must not stretch the simulated scan:
        # the capture is byte-equal in every accounting field.
        assert with_retry == without

    def test_merge_captures_sums_retry_accounting(self):
        _, _, lossy = scan({}, retry=RetryPolicy(max_retries=2))
        _, _, clean = scan(
            {0: std_spec()}, retry=RetryPolicy(max_retries=2),
            cluster_base=500, cluster_limit=1000,
        )
        merged = merge_captures([lossy, clean])
        assert merged.retries_sent == lossy.retries_sent + clean.retries_sent
        assert merged.retry_bytes == lossy.retry_bytes + clean.retry_bytes
        assert (
            merged.retries_exhausted
            == lossy.retries_exhausted + clean.retries_exhausted
        )
