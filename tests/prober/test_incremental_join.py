"""IncrementalJoin must equal the batch join_flows it now powers."""

import random
import types

import pytest

from repro.dnslib.constants import QueryType
from repro.dnslib.message import make_query, make_response
from repro.dnslib.records import AData, ResourceRecord
from repro.dnslib.wire import encode_message
from repro.dnssrv.auth import QueryLogEntry
from repro.prober.capture import IncrementalJoin, R2Record, join_flows

TRUTH = "10.9.9.9"


def _payload(qname, answer_ip=TRUTH):
    query = make_query(qname, msg_id=3)
    answers = [ResourceRecord(qname, QueryType.A, data=AData(answer_ip))]
    return encode_message(make_response(query, answers=answers, ra=True))


def _corpus(seed=42, flows=30):
    rng = random.Random(seed)
    records, entries = [], []
    groups = {}  # qname -> that qname's records, in capture order
    for index in range(flows):
        qname = f"or{index:03d}.{index:07d}.example.net"
        at = rng.uniform(0.0, 30.0)
        for _ in range(rng.randrange(0, 3)):
            entries.append(
                QueryLogEntry(at, "198.51.100.7", qname, int(QueryType.A), 0)
            )
            at += 0.1
        for _ in range(rng.randrange(0, 3)):
            ip = rng.choice([TRUTH, "203.0.113.9"])
            record = R2Record(at, "198.51.100.7", _payload(qname, ip))
            records.append(record)
            groups.setdefault(qname, []).append(record)
            at += 0.1
    # A couple of packets the join cannot key on a qname.
    records.append(R2Record(31.0, "192.0.2.5", b"\x00\x01"))
    records.append(R2Record(32.0, "192.0.2.6", b""))
    groups["__unjoinable__"] = records[-2:]
    return records, entries, groups


def _batch(records, entries):
    auth = types.SimpleNamespace(query_log=entries)
    return join_flows(records, auth=auth)


def _assert_same(left, right):
    assert left.flows == right.flows
    assert sorted(
        (view.src_ip, view.timestamp) for view in left.unjoinable
    ) == sorted((view.src_ip, view.timestamp) for view in right.unjoinable)


class TestIncrementalJoinEquivalence(object):
    def test_interleaved_feed_matches_batch(self):
        records, entries, _ = _corpus()
        expected = _batch(records, entries)
        join = IncrementalJoin()
        # Interleave records and query-log entries in global time order,
        # the way the live event sink would observe them.
        merged = [("r2", record.timestamp, record) for record in records]
        merged += [("q2", entry.timestamp, entry) for entry in entries]
        merged.sort(key=lambda item: item[1])
        for kind, _, item in merged:
            if kind == "r2":
                join.add_record(item)
            else:
                join.add_query(item.timestamp, item.qname)
        _assert_same(join.result(), expected)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_cross_qname_shuffles_match_batch(self, seed):
        # Order across qnames is free; within one qname the capture
        # order must be preserved (last-record-wins), so shuffle groups.
        records, entries, by_qname = _corpus()
        expected = _batch(records, entries)
        groups = list(by_qname.values())
        rng = random.Random(seed)
        rng.shuffle(groups)
        join = IncrementalJoin()
        for entry in entries:
            join.add_query(entry.timestamp, entry.qname)
        for group in groups:
            for record in group:
                join.add_record(record)
        _assert_same(join.result(), expected)

    def test_add_record_returns_the_parsed_view(self):
        join = IncrementalJoin()
        view = join.add_record(
            R2Record(1.0, "198.51.100.7", _payload("a.example.net"))
        )
        assert view.qname == "a.example.net"
        assert join.result().flows["a.example.net"].r2 is view
