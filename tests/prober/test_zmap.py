"""ZMap permutation tests."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.ipv4 import is_probeable
from repro.prober.zmap import (
    AddressPermutation,
    GROUP_PRIME,
    find_generator,
    is_generator,
    probe_order,
)


class TestGenerators:
    def test_group_prime_is_just_above_2_32(self):
        assert GROUP_PRIME > 1 << 32
        assert GROUP_PRIME - (1 << 32) == 15  # the ZMap prime

    def test_known_non_generators(self):
        assert not is_generator(1)
        assert not is_generator(0)
        assert not is_generator(GROUP_PRIME)
        # A quadratic residue can never generate the full group.
        square = pow(12345, 2, GROUP_PRIME)
        assert not is_generator(square)

    def test_find_generator_returns_generator(self):
        for seed in range(5):
            assert is_generator(find_generator(seed))

    def test_different_seeds_can_give_different_generators(self):
        generators = {find_generator(seed) for seed in range(10)}
        assert len(generators) > 1


class TestPermutation:
    def test_prefix_has_no_duplicates(self):
        addresses = AddressPermutation(seed=1).take(50_000)
        assert len(set(addresses)) == len(addresses)

    def test_all_values_in_ipv4_range(self):
        for address in AddressPermutation(seed=2).take(10_000):
            assert 0 <= address < 1 << 32

    def test_deterministic(self):
        assert AddressPermutation(seed=3).take(1000) == AddressPermutation(
            seed=3
        ).take(1000)

    def test_seed_changes_order(self):
        assert AddressPermutation(seed=4).take(1000) != AddressPermutation(
            seed=5
        ).take(1000)

    def test_spreads_across_address_space(self):
        # The first 10k probes should touch many /8s, unlike a linear scan.
        addresses = AddressPermutation(seed=6).take(10_000)
        slash8s = {address >> 24 for address in addresses}
        assert len(slash8s) > 200

    @settings(max_examples=20)
    @given(st.integers(0, 1_000_000))
    def test_any_seed_yields_valid_walk(self, seed):
        addresses = AddressPermutation(seed=seed).take(100)
        assert len(set(addresses)) == 100


class TestProbeOrder:
    def test_skips_reserved(self):
        for address in probe_order(seed=0, limit=20_000):
            assert is_probeable(address)

    def test_limit_respected(self):
        assert sum(1 for _ in probe_order(seed=0, limit=1234)) == 1234

    def test_deterministic(self):
        first = list(probe_order(seed=7, limit=500))
        second = list(probe_order(seed=7, limit=500))
        assert first == second
