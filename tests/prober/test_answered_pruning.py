"""The answered-set prune: bounded memory, identical results.

``Prober._answered`` exists to keep a burned subdomain from re-entering
the reuse pool; once a probe's entry is older than the retention
horizon it can no longer affect any reclaim decision, so it is pruned.
These tests check both halves of that claim: the set actually shrinks
on a long scan, and pruning changes nothing observable — the capture
with the default retention is identical to one with retention
effectively disabled.
"""

from repro.dnslib.constants import Rcode
from repro.dnssrv.hierarchy import build_hierarchy
from repro.netsim.network import Network
from repro.prober.probe import ProbeConfig, Prober
from repro.prober.zmap import probe_order
from repro.resolvers.behavior import BehaviorSpec, ResponseMode
from repro.resolvers.host import BehaviorHost
from repro.netsim.ipv4 import int_to_ip


def _run_scan(retention_windows=None, q1_target=600, responders=30, seed=3):
    """Scan a world with responders spread across the whole walk."""
    network = Network(seed=seed)
    hierarchy = build_hierarchy(network)
    addresses = list(probe_order(seed=seed, limit=q1_target))
    spec = BehaviorSpec(
        name="refuser", mode=ResponseMode.FABRICATE, ra=False, aa=False,
        rcode=Rcode.REFUSED,
    )
    step = q1_target // responders
    for offset in range(0, q1_target, step):
        BehaviorHost(
            int_to_ip(addresses[offset]), spec, hierarchy.auth.ip
        ).attach(network)
    config = ProbeConfig(
        q1_target=q1_target, rate_pps=50.0, cluster_size=100,
        response_window=2.0, seed=seed,
    )
    prober = Prober(network, hierarchy.auth, config)
    if retention_windows is not None:
        prober._ANSWERED_RETENTION_WINDOWS = retention_windows
    capture = prober.run()
    return prober, capture


class TestAnsweredPruning:
    def test_answered_set_is_pruned_on_long_scans(self):
        prober, capture = _run_scan()
        burned = capture.cluster_stats.burned
        assert burned >= 25  # the responders actually answered
        # With the scan lasting ~12s and retention 4 response windows
        # (8s), the early answers must have been dropped from the set.
        assert len(prober._answered) < burned
        assert len(prober._answered_log) == len(prober._answered)

    def test_pruning_does_not_change_the_capture(self):
        pruned_prober, pruned = _run_scan()
        kept_prober, kept = _run_scan(retention_windows=1e9)
        assert len(kept_prober._answered) == kept.cluster_stats.burned
        assert pruned.q1_sent == kept.q1_sent
        assert pruned.q1_bytes == kept.q1_bytes
        assert pruned.r2_records == kept.r2_records
        assert pruned.cluster_stats == kept.cluster_stats
        assert pruned.end_time == kept.end_time

    def test_burned_subdomains_never_reused(self):
        prober, capture = _run_scan()
        # Every answered subdomain was burned exactly once: reuse of a
        # burned allocation would re-answer and double-burn it.
        assert capture.cluster_stats.burned == len(
            {r.src_ip for r in capture.r2_records}
        )
