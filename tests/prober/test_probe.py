"""End-to-end prober tests over small synthetic populations."""

from repro.dnslib.constants import Rcode
from repro.dnssrv.hierarchy import build_hierarchy
from repro.netsim.network import Network
from repro.prober.capture import join_flows, parse_r2
from repro.prober.probe import ProbeConfig, Prober
from repro.prober.zmap import probe_order
from repro.resolvers.behavior import AnswerKind, BehaviorSpec, ResponseMode
from repro.resolvers.host import BehaviorHost
from repro.netsim.ipv4 import int_to_ip


def build_world(specs_by_offset, q1_target=200, seed=0, **config_overrides):
    """Deploy hosts at chosen positions of the probe order, then scan.

    ``specs_by_offset`` maps an index into the probe order to a
    BehaviorSpec; the prober will hit them in-order during the scan.
    """
    network = Network(seed=seed)
    hierarchy = build_hierarchy(network)
    addresses = list(probe_order(seed=seed, limit=q1_target))
    hosts = []
    for offset, spec in specs_by_offset.items():
        ip = int_to_ip(addresses[offset])
        host = BehaviorHost(ip, spec, hierarchy.auth.ip)
        host.attach(network)
        hosts.append(host)
    config = ProbeConfig(
        q1_target=q1_target,
        rate_pps=50.0,
        cluster_size=100,
        seed=seed,
        **config_overrides,
    )
    prober = Prober(network, hierarchy.auth, config)
    capture = prober.run()
    return network, hierarchy, hosts, capture


def std_spec():
    return BehaviorSpec(
        name="std", mode=ResponseMode.RESOLVE, ra=True, aa=False,
        answer_kind=AnswerKind.CORRECT,
    )


def refuser_spec():
    return BehaviorSpec(
        name="refuser", mode=ResponseMode.FABRICATE, ra=False, aa=False,
        rcode=Rcode.REFUSED,
    )


def hijack_spec():
    return BehaviorSpec(
        name="hijack", mode=ResponseMode.FABRICATE, ra=False, aa=True,
        answer_kind=AnswerKind.INCORRECT_IP, fixed_answer="208.91.197.91",
    )


class TestScan:
    def test_q1_count_and_duration(self):
        _, _, _, capture = build_world({}, q1_target=200)
        assert capture.q1_sent == 200
        # 200 probes at 50 pps -> ~4s of scan plus the cluster load.
        assert 3.0 <= capture.duration <= 20.0
        assert capture.q1_bytes == 200 * (28 + 12 + 4 + 2 + len(
            "or000.0000000.ucfsealresearch.net"
        ))

    def test_r2_collected_from_each_responder(self):
        specs = {3: std_spec(), 10: refuser_spec(), 42: hijack_spec()}
        _, _, _, capture = build_world(specs)
        assert capture.r2_count == 3
        views = [parse_r2(record) for record in capture.r2_records]
        kinds = sorted(
            (view.rcode, view.has_answer) for view in views
        )
        assert kinds == [
            (int(Rcode.NOERROR), True),   # hijack
            (int(Rcode.NOERROR), True),   # std
            (int(Rcode.REFUSED), False),  # refuser
        ]

    def test_correct_resolution_travels_through_auth(self):
        specs = {5: std_spec()}
        _, hierarchy, _, capture = build_world(specs)
        assert len(hierarchy.auth.query_log) == 1
        view = parse_r2(capture.r2_records[0])
        assert view.answers[0][0] == "ip"
        assert view.answers[0][1] == hierarchy.auth.ip  # cluster ground truth
        assert view.qname == hierarchy.auth.query_log[0].qname

    def test_unique_qname_per_probe(self):
        specs = {index: refuser_spec() for index in range(0, 60, 2)}
        _, _, _, capture = build_world(specs)
        qnames = [parse_r2(record).qname for record in capture.r2_records]
        assert len(set(qnames)) == len(qnames) == 30

    def test_subdomain_reuse_limits_clusters(self):
        _, _, _, capture = build_world(
            {}, q1_target=1000, response_window=1.0
        )
        # 1000 probes over clusters of 100: without reuse this needs 10.
        assert capture.cluster_stats.clusters_created <= 3
        assert capture.cluster_stats.reused_allocations > 0

    def test_without_reuse_consumes_clusters(self):
        _, _, _, capture = build_world(
            {}, q1_target=1000, reuse_subdomains=False
        )
        assert capture.cluster_stats.clusters_created == 10

    def test_responder_hint_equivalence(self):
        """The accelerated path must produce identical measurements."""
        specs = {1: std_spec(), 7: hijack_spec(), 20: refuser_spec()}
        network_full, hierarchy_full, _, full = build_world(specs, q1_target=100)

        network = Network(seed=0)
        hierarchy = build_hierarchy(network)
        addresses = list(probe_order(seed=0, limit=100))
        hint = set()
        for offset, spec in specs.items():
            ip = int_to_ip(addresses[offset])
            BehaviorHost(ip, spec, hierarchy.auth.ip).attach(network)
            hint.add(ip)
        config = ProbeConfig(q1_target=100, rate_pps=50.0, cluster_size=100, seed=0)
        fast = Prober(network, hierarchy.auth, config, responder_hint=hint).run()

        assert fast.q1_sent == full.q1_sent
        assert fast.q1_bytes == full.q1_bytes
        assert fast.r2_count == full.r2_count
        assert sorted(r.payload for r in fast.r2_records) == sorted(
            r.payload for r in full.r2_records
        )
        assert len(hierarchy.auth.query_log) == len(hierarchy_full.auth.query_log)

    def test_sent_log_optional(self):
        specs = {2: refuser_spec()}
        _, _, _, capture = build_world(specs, record_sent_log=True)
        assert len(capture.sent_log) == capture.q1_sent
        view = parse_r2(capture.r2_records[0])
        assert capture.sent_log[view.qname] == view.src_ip
        _, _, _, capture = build_world(specs, record_sent_log=False)
        assert capture.sent_log == {}


class TestFlowJoin:
    def test_flows_join_q2_and_r2(self):
        specs = {4: std_spec(), 9: hijack_spec()}
        _, hierarchy, _, capture = build_world(specs)
        flow_set = join_flows(capture.r2_records, hierarchy.auth)
        assert flow_set.r2_count == 2
        resolved = [f for f in flow_set.flows_with_r2() if f.resolved_via_auth]
        assert len(resolved) == 1  # only the std resolver contacted auth
        assert flow_set.q2_count == 1
        assert flow_set.r1_count == 1

    def test_empty_question_unjoinable(self):
        eq_spec = BehaviorSpec(
            name="eq", mode=ResponseMode.FABRICATE, ra=True, aa=False,
            rcode=Rcode.SERVFAIL, empty_question=True,
        )
        _, hierarchy, _, capture = build_world({6: eq_spec})
        flow_set = join_flows(capture.r2_records, hierarchy.auth)
        assert len(flow_set.unjoinable) == 1
        assert flow_set.views == []

    def test_malformed_answer_still_joined(self):
        malformed = BehaviorSpec(
            name="bad", mode=ResponseMode.FABRICATE, ra=False, aa=False,
            answer_kind=AnswerKind.MALFORMED, fixed_answer=None,
        )
        _, hierarchy, _, capture = build_world({8: malformed})
        flow_set = join_flows(capture.r2_records, hierarchy.auth)
        (view,) = flow_set.views
        assert view.malformed_answer
        assert view.has_answer
        assert view.qname is not None
        assert view.answer_forms() == {"na"}
