"""Operator opt-out blocklist tests."""

from repro.netsim.ipv4 import Ipv4Block, int_to_ip
from repro.prober.zmap import probe_order


class TestProbeOrderBlocklist:
    def test_blocked_addresses_never_yielded(self):
        baseline = list(probe_order(seed=4, limit=2000))
        # Opt out the /8s that appear earliest in this permutation.
        blocked_slash8s = {baseline[0] >> 24, baseline[1] >> 24}
        blocklist = [f"{slash8}.0.0.0/8" for slash8 in blocked_slash8s]
        filtered = list(probe_order(seed=4, limit=2000, blocklist=blocklist))
        assert all(address >> 24 not in blocked_slash8s for address in filtered)

    def test_limit_counts_only_probed(self):
        blocklist = ["0.0.0.0/1"]  # opt out half the Internet
        filtered = list(probe_order(seed=4, limit=500, blocklist=blocklist))
        assert len(filtered) == 500
        assert all(address >> 31 == 1 for address in filtered)

    def test_accepts_block_objects(self):
        block = Ipv4Block.parse("128.0.0.0/1")
        filtered = list(probe_order(seed=4, limit=300, blocklist=[block]))
        assert all(address not in block for address in filtered)

    def test_empty_blocklist_is_identity(self):
        assert list(probe_order(seed=4, limit=300, blocklist=[])) == list(
            probe_order(seed=4, limit=300)
        )


class TestProberBlocklist:
    def test_blocklisted_responder_not_probed(self):
        from repro.dnssrv.hierarchy import build_hierarchy
        from repro.netsim.network import Network
        from repro.prober.probe import ProbeConfig, Prober
        from repro.resolvers.behavior import BehaviorSpec, ResponseMode
        from repro.resolvers.host import BehaviorHost
        from repro.dnslib.constants import Rcode

        network = Network(seed=0)
        hierarchy = build_hierarchy(network)
        addresses = list(probe_order(seed=0, limit=50))
        target_ip = int_to_ip(addresses[5])
        spec = BehaviorSpec(
            name="refuser", mode=ResponseMode.FABRICATE, ra=False, aa=False,
            rcode=Rcode.REFUSED,
        )
        host = BehaviorHost(target_ip, spec, hierarchy.auth.ip)
        host.attach(network)
        config = ProbeConfig(
            q1_target=50, rate_pps=50.0, cluster_size=100, seed=0,
            blocklist=(f"{target_ip}/32",),
        )
        capture = Prober(network, hierarchy.auth, config).run()
        assert capture.q1_sent == 50  # still walks 50 probeable addresses
        assert host.queries_received == 0
        assert capture.r2_count == 0
