"""Tolerant R2 parsing tests (the libpcap-equivalent pipeline)."""

import pytest

from repro.dnslib.constants import QueryType, Rcode
from repro.dnslib.message import DnsFlags, DnsHeader, DnsMessage, Question, make_query, make_response
from repro.dnslib.records import AData, CnameData, RawData, ResourceRecord, TxtData
from repro.dnslib.wire import encode_message
from repro.prober.capture import (
    FORM_IP,
    FORM_MALFORMED,
    FORM_OTHER,
    FORM_STRING,
    FORM_URL,
    R2Record,
    join_flows,
    parse_r2,
)

QNAME = "or000.0000001.ucfsealresearch.net"


def record_for(message) -> R2Record:
    return R2Record(1.0, "9.9.9.9", encode_message(message))


class TestParseR2:
    def test_clean_answer(self):
        query = make_query(QNAME, msg_id=5)
        response = make_response(
            query,
            answers=[ResourceRecord(QNAME, QueryType.A, data=AData("1.2.3.4"))],
            ra=True,
        )
        view = parse_r2(record_for(response))
        assert view.qname == QNAME
        assert view.ra and not view.aa
        assert view.answers == [(FORM_IP, "1.2.3.4")]
        assert view.has_answer
        assert not view.malformed_answer

    def test_answer_form_classification(self):
        query = make_query(QNAME)
        response = make_response(
            query,
            answers=[
                ResourceRecord(QNAME, QueryType.CNAME, data=CnameData("u.dcoin.co")),
                ResourceRecord(QNAME, QueryType.TXT, data=TxtData(("wild",))),
                ResourceRecord(QNAME, 99, data=RawData(99, b"\x01")),
            ],
        )
        view = parse_r2(record_for(response))
        forms = [form for form, _ in view.answers]
        assert forms == [FORM_URL, FORM_STRING, FORM_OTHER]

    def test_opt_record_not_an_answer(self):
        from repro.dnslib.edns import add_edns

        query = make_query(QNAME)
        response = make_response(query, ra=True)
        add_edns(response)
        # Move the OPT into the answer section to simulate a weird host.
        response.answers.extend(response.additionals)
        response.additionals.clear()
        view = parse_r2(record_for(response))
        assert view.answers == []

    def test_empty_question(self):
        query = make_query(QNAME)
        response = make_response(query, rcode=Rcode.SERVFAIL, copy_question=False)
        view = parse_r2(record_for(response))
        assert view.qname is None
        assert not view.has_question
        assert view.rcode == Rcode.SERVFAIL

    def test_malformed_answer_keeps_header(self):
        # ANCOUNT=1 but truncated RDATA: header/question still parse.
        query = make_query(QNAME, msg_id=3)
        response = make_response(query, ra=True, aa=True)
        wire = bytearray(encode_message(response))
        wire[6:8] = (1).to_bytes(2, "big")
        wire += b"\xc0\x0c\x00\x01\x00\x01\x00\x00\x01\x2c\x00\x04\x00"
        view = parse_r2(R2Record(0.0, "9.9.9.9", bytes(wire)))
        assert view.malformed_answer
        assert view.has_answer
        assert view.ra and view.aa
        assert view.qname == QNAME
        assert view.answer_forms() == {FORM_MALFORMED}

    def test_tiny_garbage_payload(self):
        view = parse_r2(R2Record(0.0, "9.9.9.9", b"\x01\x02"))
        assert not view.decodable
        assert view.qname is None

    def test_header_only_garbage(self):
        # 12 valid header bytes claiming QR=1 + 1 question, then junk.
        header = DnsFlags(qr=True, ra=True).to_int(0, 0)
        payload = (7).to_bytes(2, "big") + header.to_bytes(2, "big")
        payload += (1).to_bytes(2, "big") + b"\x00" * 6 + b"\xff\xff"
        view = parse_r2(R2Record(0.0, "9.9.9.9", payload))
        assert view.ra
        assert view.qname is None


class TestJoinFlows:
    def test_views_exclude_unjoinable(self):
        query = make_query(QNAME)
        joined = record_for(make_response(query))
        unjoined = record_for(make_response(query, copy_question=False))
        flow_set = join_flows([joined, unjoined])
        assert len(flow_set.views) == 1
        assert len(flow_set.unjoinable) == 1
        assert flow_set.r2_count == 2
        assert flow_set.all_views and len(flow_set.all_views) == 2

    def test_join_without_auth(self):
        query = make_query(QNAME)
        flow_set = join_flows([record_for(make_response(query))], auth=None)
        assert flow_set.q2_count == 0
        assert flow_set.flows[QNAME].r2 is not None


class TestShardMerges:
    """Edge cases the crash-recovery path feeds the merge functions."""

    def _capture(self, q1_sent=0, records=(), start=0.0, end=0.0,
                 sent_log=None, **extra):
        from repro.prober.probe import ProbeCapture
        from repro.prober.subdomain import ClusterStats

        return ProbeCapture(
            q1_sent=q1_sent, q1_bytes=q1_sent * 75,
            r2_records=list(records), start_time=start, end_time=end,
            cluster_stats=ClusterStats(),
            sent_log=dict(sent_log or {}), **extra,
        )

    def test_merge_zero_captures_rejected(self):
        from repro.prober.probe import merge_captures

        with pytest.raises(ValueError, match="zero captures"):
            merge_captures([])

    def test_merge_single_capture_is_identity(self):
        from repro.prober.probe import merge_captures

        capture = self._capture(q1_sent=3, end=2.0)
        assert merge_captures([capture]) is capture

    def test_zero_probe_capture_merges_additively(self):
        # A degraded campaign can produce an idle shard (all probes
        # blackholed) — folding it in must not perturb the totals.
        from repro.prober.probe import merge_captures

        idle = self._capture(start=1.0, end=1.0)
        busy = self._capture(
            q1_sent=5, records=[record_for(make_response(make_query(QNAME)))],
            start=0.0, end=10.0, sent_log={QNAME: "9.9.9.9"},
            retries_sent=2, retry_bytes=150, retries_exhausted=1,
        )
        merged = merge_captures([idle, busy])
        assert merged.q1_sent == 5
        assert merged.r2_count == 1
        assert merged.start_time == 0.0 and merged.end_time == 10.0
        assert merged.retries_sent == 2
        assert merged.retries_exhausted == 1
        assert merged.sent_log == busy.sent_log

    def test_merge_flow_sets_of_nothing_is_empty(self):
        from repro.prober.capture import merge_flow_sets

        merged = merge_flow_sets([])
        assert merged.flows == {}
        assert merged.unjoinable == []
        assert merged.all_views == []

    def test_merge_flow_sets_missing_shard_subset(self):
        # Resume/degraded merges fold however many shards survived;
        # any subset must merge cleanly and keep its flows intact.
        from repro.prober.capture import merge_flow_sets

        other_qname = QNAME.replace("0000001", "0000002")
        first = join_flows([record_for(make_response(make_query(QNAME)))])
        second = join_flows(
            [record_for(make_response(make_query(other_qname)))]
        )
        assert sorted(merge_flow_sets([first, second]).flows) == sorted(
            [QNAME, other_qname]
        )
        assert sorted(merge_flow_sets([first]).flows) == [QNAME]
