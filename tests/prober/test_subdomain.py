"""Subdomain scheme and cluster allocation tests."""

import pytest

from repro.prober.subdomain import ClusterAllocator, SubdomainScheme


class TestScheme:
    def test_format_matches_paper(self):
        scheme = SubdomainScheme()
        assert scheme.qname(0, 0) == "or000.0000000.ucfsealresearch.net"
        assert scheme.qname(0, 1) == "or000.0000001.ucfsealresearch.net"
        assert scheme.qname(999, 4_999_999) == "or999.4999999.ucfsealresearch.net"

    def test_parse_roundtrip(self):
        scheme = SubdomainScheme()
        assert scheme.parse(scheme.qname(12, 34567)) == (12, 34567)

    def test_parse_rejects_foreign_names(self):
        scheme = SubdomainScheme()
        assert scheme.parse("www.google.com") is None
        assert scheme.parse("or00.0000001.ucfsealresearch.net") is None
        assert scheme.parse("or000.0000001.evil.net") is None

    def test_qname_length_constant(self):
        scheme = SubdomainScheme()
        lengths = {
            len(scheme.qname(c, i))
            for c, i in [(0, 0), (999, 9_999_999), (5, 123)]
        }
        assert lengths == {scheme.qname_length}

    def test_max_clusters(self):
        assert SubdomainScheme().max_clusters == 1000


class TestAllocator:
    def test_sequential_allocation(self):
        allocator = ClusterAllocator(SubdomainScheme(), cluster_size=3)
        assert [allocator.allocate() for _ in range(4)] == [
            (0, 0), (0, 1), (0, 2), (1, 0)
        ]
        assert allocator.stats.clusters_created == 2

    def test_reuse_preferred_over_fresh(self):
        allocator = ClusterAllocator(SubdomainScheme(), cluster_size=10)
        first = allocator.allocate()
        allocator.release(first)
        assert allocator.allocate() == first
        assert allocator.stats.reused_allocations == 1

    def test_reuse_disabled_discards_releases(self):
        allocator = ClusterAllocator(SubdomainScheme(), cluster_size=10, reuse=False)
        first = allocator.allocate()
        allocator.release(first)
        assert allocator.allocate() != first
        assert allocator.stats.reused_allocations == 0

    def test_reuse_bounds_cluster_consumption(self):
        # The paper's 800 -> 4 clusters effect: with reuse, cluster burn
        # tracks the responder count, not the probe count.
        scheme = SubdomainScheme()
        with_reuse = ClusterAllocator(scheme, cluster_size=100, reuse=True)
        without = ClusterAllocator(scheme, cluster_size=100, reuse=False)
        for index in range(10_000):
            responded = index % 50 == 0  # 2% responders
            for allocator in (with_reuse, without):
                allocation = allocator.allocate()
                if responded:
                    allocator.burn(allocation)
                else:
                    allocator.release(allocation)
        assert without.stats.clusters_created == 100
        assert with_reuse.stats.clusters_created <= 3
        assert with_reuse.stats.burned == 200

    def test_needs_new_cluster(self):
        allocator = ClusterAllocator(SubdomainScheme(), cluster_size=1)
        assert allocator.needs_new_cluster()
        allocation = allocator.allocate()
        assert allocator.needs_new_cluster()
        allocator.release(allocation)
        assert not allocator.needs_new_cluster()

    def test_namespace_exhaustion(self):
        scheme = SubdomainScheme(cluster_digits=1)
        allocator = ClusterAllocator(scheme, cluster_size=1, reuse=False)
        for _ in range(10):
            allocator.allocate()
        with pytest.raises(RuntimeError):
            allocator.allocate()

    def test_build_cluster_zone(self):
        scheme = SubdomainScheme()
        allocator = ClusterAllocator(scheme, cluster_size=5)
        zone = allocator.build_cluster_zone(2, "45.76.1.10")
        assert zone.record_count == 5
        assert zone.rrset("or002.0000003.ucfsealresearch.net", 1)

    def test_invalid_cluster_size(self):
        with pytest.raises(ValueError):
            ClusterAllocator(SubdomainScheme(), cluster_size=0)

    def test_stats_reuse_rate(self):
        allocator = ClusterAllocator(SubdomainScheme(), cluster_size=10)
        a = allocator.allocate()
        allocator.release(a)
        allocator.allocate()
        assert allocator.stats.reuse_rate == 0.5
