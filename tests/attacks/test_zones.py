"""Unit tests for the attack-world substrate (zones, attacker auth)."""

import pytest

from repro.attacks import NXNS_ZONE, NxnsAuthServer, VICTIM_SLD, build_attack_world
from repro.attacks.defense import DEFENSE_POSTURES, posture_by_name
from repro.attacks.zones import ATTACKER_AUTH_IP, NXNS_CHILD_PREFIX
from repro.clients.workload import ClientWorkload, WorkloadConfig
from repro.dnslib.constants import QueryType, Rcode
from repro.dnslib.message import make_query
from repro.dnslib.wire import decode_message, encode_message
from repro.netsim.network import Network
from repro.netsim.packet import Datagram

CLIENT_IP = "8.8.4.100"


def _query_server(server_ip, qname, network):
    if not network.is_bound(CLIENT_IP, 5555):
        inbox = []
        network.bind(
            CLIENT_IP, 5555,
            lambda dg, net: inbox.append(decode_message(dg.payload)),
        )
        network._test_inbox = inbox
    before = len(network._test_inbox)
    network.send(
        Datagram(
            CLIENT_IP, 5555, server_ip, 53,
            encode_message(make_query(qname)),
        )
    )
    network.run()
    return network._test_inbox[before:]


class TestNxnsAuthServer:
    def test_referrals_fan_out_under_victim_sld(self):
        network = Network()
        server = NxnsAuthServer(
            ATTACKER_AUTH_IP, NXNS_ZONE, fanout=5, victim_sld=VICTIM_SLD
        )
        server.attach(network)
        responses = _query_server(
            ATTACKER_AUTH_IP, f"p7.{NXNS_ZONE}", network
        )
        assert len(responses) == 1
        reply = responses[0]
        assert reply.rcode == Rcode.NOERROR
        assert not reply.answers
        ns_targets = [
            record.data.nsdname
            for record in reply.authorities
            if record.rtype == QueryType.NS
        ]
        assert len(ns_targets) == 5
        assert all(
            name.startswith(f"{NXNS_CHILD_PREFIX}p7-")
            and name.endswith(f".{VICTIM_SLD}")
            for name in ns_targets
        )
        # Glueless by construction: no A records ride along.
        assert not reply.additionals
        assert server.queries_served == 1

    def test_distinct_qnames_get_distinct_children(self):
        network = Network()
        server = NxnsAuthServer(
            ATTACKER_AUTH_IP, NXNS_ZONE, fanout=3, victim_sld=VICTIM_SLD
        )
        server.attach(network)
        first = _query_server(ATTACKER_AUTH_IP, f"p0.{NXNS_ZONE}", network)
        second = _query_server(ATTACKER_AUTH_IP, f"p1.{NXNS_ZONE}", network)
        names = lambda reply: {r.data.nsdname for r in reply.authorities}
        # Every flood query fans into fresh child names, so no resolver
        # cache can absorb the amplification.
        assert names(first[0]).isdisjoint(names(second[0]))


class TestBuildAttackWorld:
    def _world(self):
        network = Network(seed=11)
        workload = ClientWorkload(
            WorkloadConfig(clients=2, queries_per_client=1, domains=4),
            ["93.184.10.1"],
            seed=11,
            domain_suffix=VICTIM_SLD,
        )
        hierarchy, attacker = build_attack_world(network, workload, fanout=4)
        return network, workload, hierarchy, attacker

    def test_victim_zone_serves_workload_domains(self):
        network, workload, hierarchy, _ = self._world()
        qname = workload.domains[0]
        responses = _query_server(hierarchy.auth.ip, qname, network)
        assert responses[0].rcode == Rcode.NOERROR
        assert responses[0].first_a_record() is not None

    def test_nxns_zone_delegated_to_attacker(self):
        network, _, hierarchy, attacker = self._world()
        responses = _query_server(
            hierarchy.tld.ip, f"p0.{NXNS_ZONE}", network
        )
        referral_ips = [
            record.data.address
            for record in responses[0].additionals
            if record.rtype == QueryType.A
        ]
        assert attacker.ip in referral_ips

    def test_victim_auth_nxdomains_children(self):
        network, _, hierarchy, _ = self._world()
        responses = _query_server(
            hierarchy.auth.ip,
            f"{NXNS_CHILD_PREFIX}p0-0.{VICTIM_SLD}",
            network,
        )
        assert responses[0].rcode == Rcode.NXDOMAIN


class TestDefensePostures:
    def test_registry_shape(self):
        assert [p.name for p in DEFENSE_POSTURES] == [
            "undefended", "rrl", "quota", "hardened",
        ]

    def test_undefended_builds_nothing(self):
        posture = posture_by_name("undefended")
        assert posture.rate_limiter() is None
        assert posture.query_quota() is None
        kwargs = posture.resolver_kwargs(max_glueless_undefended=9)
        # Uncapped postures chase the world's full fan-out so NXNS has
        # something to amplify through.
        assert kwargs["max_glueless"] == 9
        assert kwargs["rate_limiter"] is None
        assert kwargs["max_pending"] is None

    def test_hardened_builds_every_defense(self):
        posture = posture_by_name("hardened")
        assert posture.rate_limiter() is not None
        assert posture.query_quota() is not None
        kwargs = posture.resolver_kwargs(max_glueless_undefended=9)
        assert kwargs["max_glueless"] == 2
        assert kwargs["max_pending"] == 64
        assert kwargs["negative_ttl"] == 30.0

    def test_fresh_instances_per_call(self):
        # Fleet deployments must not share token buckets.
        posture = posture_by_name("rrl")
        assert posture.rate_limiter() is not posture.rate_limiter()

    def test_unknown_posture_raises(self):
        with pytest.raises(ValueError):
            posture_by_name("tinfoil")
