"""Attack x defense matrix tests.

The acceptance bar for the adversarial suite: defenses must produce
*measurable* mitigation (asserted here, not just printed), benign
clients must stay within the documented collateral bound, and the whole
matrix must be deterministic for a given seed.

One matrix run (~3 s) is shared module-wide via a fixture.
"""

import dataclasses

import pytest

from repro.attacks import (
    ATTACK_FAMILIES,
    AttackSuiteConfig,
    MATRIX_HEADER,
    attack_markdown,
    render_attack_matrix,
    run_attack_matrix,
)

#: Documented collateral bound: defenses may cost benign clients at
#: most 10% of their answers (the paper-style "collateral damage" axis).
COLLATERAL_FLOOR = 0.9


@pytest.fixture(scope="module")
def matrix():
    return run_attack_matrix(AttackSuiteConfig(seed=3))


class TestMatrixShape:
    def test_full_grid(self, matrix):
        assert matrix.families == ("baseline",) + ATTACK_FAMILIES
        assert matrix.postures == ("undefended", "rrl", "quota", "hardened")
        assert len(matrix.rows) == 16

    def test_baseline_rows_carry_no_attack(self, matrix):
        for posture in matrix.postures:
            cell = matrix.cell("baseline", posture)
            assert cell.attack_queries == 0
            assert cell.amplification == 0.0

    def test_cell_lookup_unknown_raises(self, matrix):
        with pytest.raises(KeyError):
            matrix.cell("nxns", "tinfoil")


class TestNxnsMitigation:
    def test_undefended_amplifies(self, matrix):
        cell = matrix.cell("nxns", "undefended")
        # Each flood query fans out into glueless chases; the victim
        # auth sees an order of magnitude more queries than the
        # attacker sent.
        assert cell.amplification >= 8.0
        assert cell.glueless_launched > 0
        assert cell.glueless_capped == 0

    def test_hardened_caps_fanout(self, matrix):
        undefended = matrix.cell("nxns", "undefended")
        hardened = matrix.cell("nxns", "hardened")
        assert hardened.amplification <= undefended.amplification / 4
        assert hardened.glueless_capped > 0
        assert hardened.auth_qps < undefended.auth_qps / 4

    def test_quota_alone_already_helps(self, matrix):
        undefended = matrix.cell("nxns", "undefended")
        quota = matrix.cell("nxns", "quota")
        assert quota.quota_refused > 0
        assert quota.auth_queries < undefended.auth_queries


class TestWaterTortureMitigation:
    def test_hardened_cuts_auth_qps(self, matrix):
        undefended = matrix.cell("water_torture", "undefended")
        hardened = matrix.cell("water_torture", "hardened")
        assert hardened.auth_qps < undefended.auth_qps * 0.8
        assert hardened.quota_refused > 0

    def test_negative_cache_absorbs_repeats(self, matrix):
        # The flood draws from a small name pool, so NXDOMAIN caching
        # (hardened posture only) starts absorbing repeats.
        assert matrix.cell("water_torture", "hardened").negative_hits > 0
        assert matrix.cell("water_torture", "undefended").negative_hits == 0


class TestReflectionMitigation:
    def test_undefended_reflects_amplified_bytes(self, matrix):
        cell = matrix.cell("reflection", "undefended")
        assert cell.amplification > 10.0
        assert cell.victim_bytes > cell.attacker_bytes

    def test_rrl_halves_amplification(self, matrix):
        undefended = matrix.cell("reflection", "undefended")
        rrl = matrix.cell("reflection", "rrl")
        assert rrl.amplification < undefended.amplification * 0.5
        assert rrl.rrl_dropped > 0
        assert rrl.victim_packets < undefended.victim_packets

    def test_hardened_at_least_as_good_as_rrl(self, matrix):
        rrl = matrix.cell("reflection", "rrl")
        hardened = matrix.cell("reflection", "hardened")
        assert hardened.amplification <= rrl.amplification * 1.1


class TestBenignCollateral:
    def test_all_cells_within_collateral_bound(self, matrix):
        for cell in matrix.rows:
            assert cell.benign_sent > 0
            assert cell.benign_answer_rate >= COLLATERAL_FLOOR, (
                f"{cell.family}/{cell.posture} dropped too much benign "
                f"traffic: {cell.benign_answer_rate:.2%}"
            )


class TestDeterminism:
    def test_rerun_is_identical(self, matrix):
        again = run_attack_matrix(AttackSuiteConfig(seed=3))
        assert again.rows == matrix.rows
        assert render_attack_matrix(again) == render_attack_matrix(matrix)

    def test_family_subset_cells_unmoved(self, matrix):
        # Lane-derived seeds are keyed by family/posture *name*, so
        # running a subset must reproduce the full run's cells exactly.
        subset = run_attack_matrix(
            AttackSuiteConfig(seed=3, families=("reflection",))
        )
        for posture in subset.postures:
            assert subset.cell("reflection", posture) == matrix.cell(
                "reflection", posture
            )

    def test_different_seed_differs(self, matrix):
        other = run_attack_matrix(AttackSuiteConfig(seed=4))
        assert other.rows != matrix.rows


class TestRendering:
    def test_text_table(self, matrix):
        text = render_attack_matrix(matrix)
        assert text.startswith(MATRIX_HEADER)
        for family in ("baseline",) + ATTACK_FAMILIES:
            assert family in text
        assert "hardened" in text

    def test_markdown_fences_table(self, matrix):
        doc = attack_markdown(matrix)
        assert doc.count("```") == 2
        assert MATRIX_HEADER in doc


class TestTelemetry:
    def test_counters_populated(self):
        from repro.telemetry import TelemetryConfig, as_hub

        hub = as_hub(TelemetryConfig())
        run_attack_matrix(
            AttackSuiteConfig(
                seed=5,
                resolvers=3,
                benign_clients=6,
                benign_queries_per_client=2,
                attack_queries=24,
                reflection_rounds=6,
                families=("nxns",),
                postures=("undefended",),
            ),
            telemetry=hub,
        )
        counters = hub.snapshot().metrics.counters
        assert counters.get("attacks.cells_run") == 2
        assert counters.get("attacks.nxns.auth_queries", 0) > 0


class TestConfigValidation:
    def test_rejects_unknown_family(self):
        with pytest.raises(ValueError):
            AttackSuiteConfig(families=("slowloris",))

    def test_rejects_unknown_posture(self):
        with pytest.raises(ValueError):
            AttackSuiteConfig(postures=("tinfoil",))

    def test_rejects_nonpositive_counts(self):
        with pytest.raises(ValueError):
            AttackSuiteConfig(resolvers=0)
        with pytest.raises(ValueError):
            AttackSuiteConfig(attack_qps=0.0)

    def test_cells_are_frozen(self, matrix):
        with pytest.raises(dataclasses.FrozenInstanceError):
            matrix.rows[0].amplification = 99.0
