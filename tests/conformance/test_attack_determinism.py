"""Attack-matrix conformance: byte-identity across execution modes.

The adversarial suite rides the same contract as Tables II–X: for a
fixed config the attack × defense matrix must not depend on *how* the
campaign executed. Serial batch, sharded batch (any worker count),
streaming, and runs resumed from a mid-campaign checkpoint must all
render byte-identical matrices — the matrix is a pure function of
(seed, latency_median), derived through the dedicated splitmix64 attack
lane.

Golden pins freeze exact cell values at the seed-3 reference config so
an accidental reshuffle of any attack schedule (a new RNG draw, a lane
renumber, a retuned default) is caught as a diff, not a silent drift.
"""

import dataclasses

import pytest

from repro.attacks import (
    AttackSuiteConfig,
    MATRIX_HEADER,
    render_attack_matrix,
    run_attack_matrix,
)
from repro.core import Campaign, CampaignConfig
from repro.core.shard import (
    CHAOS_RAISE_ENV,
    checkpoint_fingerprint,
    run_sharded,
)
from repro.datasets.store import load_shard_checkpoints

SCALE = 65536

BASE = CampaignConfig(year=2018, scale=SCALE, seed=3, attack_suite=True)


def _config(**overrides):
    return dataclasses.replace(BASE, **overrides)


def _run(**overrides):
    config = _config(**overrides)
    if config.workers > 1:
        return run_sharded(config, parallelism="inline")
    return Campaign(config).run()


@pytest.fixture(scope="module")
def serial_batch():
    return _run()


def _assert_same_matrix(result, reference):
    assert result.attack_matrix == reference.attack_matrix
    assert result.report() == reference.report()


class TestReportCarriesMatrix:
    def test_section_present_when_enabled(self, serial_batch):
        assert serial_batch.attack_matrix is not None
        assert MATRIX_HEADER in serial_batch.report()

    def test_default_off_leaves_tables_untouched(self, serial_batch):
        plain = _run(attack_suite=False)
        assert plain.attack_matrix is None
        assert MATRIX_HEADER not in plain.report()
        # The attack section is appended strictly after every census
        # table, so disabling it must subtract exactly that section and
        # perturb nothing else (Tables II–X byte-identity).
        assert serial_batch.report() == (
            plain.report()
            + "\n\n"
            + render_attack_matrix(serial_batch.attack_matrix)
        )


class TestCrossModeEquivalence:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_sharded_matches_serial(self, serial_batch, workers):
        _assert_same_matrix(_run(workers=workers), serial_batch)

    @pytest.mark.parametrize("workers", [1, 2])
    def test_stream_matches_serial(self, serial_batch, workers):
        _assert_same_matrix(
            _run(mode="stream", workers=workers), serial_batch
        )

    def test_matrix_ignores_fault_profile_split(self, serial_batch):
        # Probe-plane faults reshape Tables II–X, but the attack matrix
        # is derived only from (seed, latency) — it must not move.
        faulted = _run(fault_profile="bursty", workers=2)
        assert faulted.attack_matrix == serial_batch.attack_matrix


class TestResumeEquivalence:
    def test_resumed_matrix_matches_full_run(
        self, serial_batch, monkeypatch, tmp_path
    ):
        config = _config(workers=4, max_shard_retries=0)
        checkpoint_dir = tmp_path / "ckpt"
        monkeypatch.setenv(CHAOS_RAISE_ENV, "3:99")
        interrupted = run_sharded(
            config, parallelism="inline", checkpoint_dir=checkpoint_dir
        )
        assert interrupted.degraded is not None
        # Even a degraded merge renders the (mode-invariant) matrix.
        assert interrupted.attack_matrix == serial_batch.attack_matrix
        saved = load_shard_checkpoints(
            checkpoint_dir, checkpoint_fingerprint(config)
        )
        assert sorted(saved) == [0, 1, 2]

        monkeypatch.delenv(CHAOS_RAISE_ENV)
        resumed = run_sharded(
            config,
            parallelism="inline",
            checkpoint_dir=checkpoint_dir,
            resume=True,
        )
        assert resumed.degraded is None
        _assert_same_matrix(resumed, serial_batch)


class TestGoldenPins:
    """Exact cell values at ``AttackSuiteConfig(seed=3)`` defaults.

    These are the same cells a ``CampaignConfig(seed=3)`` campaign
    embeds (the matrix inherits only seed and latency from the
    campaign), pinned against the standalone runner so the pin stays
    cheap. A drift here means an attack schedule, defense default, or
    seed lane moved — every one of those is a conformance break, not a
    tuning detail.
    """

    @pytest.fixture(scope="class")
    def matrix(self, serial_batch):
        standalone = run_attack_matrix(AttackSuiteConfig(seed=3))
        assert standalone == serial_batch.attack_matrix
        return standalone

    def test_nxns_row(self, matrix):
        undefended = matrix.cell("nxns", "undefended")
        assert undefended.amplification == pytest.approx(12.0)
        assert undefended.auth_queries == 1152
        assert undefended.glueless_launched == 1152
        hardened = matrix.cell("nxns", "hardened")
        assert hardened.amplification == pytest.approx(1.375)
        assert hardened.auth_queries == 132
        assert (hardened.glueless_launched, hardened.glueless_capped) == (
            132,
            660,
        )
        assert hardened.quota_refused == 30
        assert hardened.rrl_dropped == 54

    def test_water_torture_row(self, matrix):
        undefended = matrix.cell("water_torture", "undefended")
        assert undefended.auth_queries == 96
        assert undefended.auth_qps == pytest.approx(160.0)
        hardened = matrix.cell("water_torture", "hardened")
        assert hardened.auth_queries == 62
        assert hardened.negative_hits == 4
        assert hardened.quota_refused == 30

    def test_reflection_row(self, matrix):
        undefended = matrix.cell("reflection", "undefended")
        assert undefended.amplification == pytest.approx(20.4933, abs=5e-4)
        assert undefended.victim_bytes == 165996
        assert undefended.victim_packets == 108
        rrl = matrix.cell("reflection", "rrl")
        assert rrl.amplification == pytest.approx(6.8311, abs=5e-4)
        assert rrl.victim_packets == 36
        hardened = matrix.cell("reflection", "hardened")
        assert hardened.victim_bytes == 50977
        assert hardened.quota_refused == 42

    def test_benign_plane(self, matrix):
        for cell in matrix.rows:
            assert (cell.benign_sent, cell.benign_answered) == (96, 96)
