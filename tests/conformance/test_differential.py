"""Differential conformance across execution modes.

The two new census tables — transparent forwarders (off-path R2 join)
and DNSSEC validation behavior (bogus-RRSIG probe) — ride the same
byte-identity contract as Tables II–X: for a fixed config the rendered
report must not depend on *how* the campaign executed. Concretely:

- at zero loss, any worker count and either mode renders the serial
  batch report byte-for-byte;
- under a fault profile, batch and stream at the same worker count
  render identically (faults are derived per-shard, so worker counts
  are distinct populations by design);
- a campaign resumed from a mid-campaign checkpoint renders the same
  report as an uninterrupted run.

Structured-table equality (``forwarder_table`` / ``validation_table``
dataclasses) is asserted alongside the rendered text so a renderer that
happens to collapse two different tables into the same string cannot
mask a join divergence.
"""

import dataclasses

import pytest

from repro.core import Campaign, CampaignConfig
from repro.core.shard import (
    CHAOS_RAISE_ENV,
    checkpoint_fingerprint,
    run_sharded,
)
from repro.datasets.store import load_shard_checkpoints

#: Coarse enough that one campaign runs in well under a second.
SCALE = 65536

BASE = CampaignConfig(year=2018, scale=SCALE, seed=3)

#: Section headers of the two new tables inside ``report()``.
FORWARDER_HEADER = "Transparent forwarders (off-path R2)"
VALIDATION_HEADER = "DNSSEC validation behavior"


def _config(**overrides):
    return dataclasses.replace(BASE, **overrides)


def _run(**overrides):
    config = _config(**overrides)
    if config.workers > 1:
        return run_sharded(config, parallelism="inline")
    return Campaign(config).run()


@pytest.fixture(scope="module")
def serial_batch():
    return _run()


@pytest.fixture(scope="module")
def bursty_by_workers():
    """Batch runs under the bursty profile, one per worker count."""
    return {
        workers: _run(fault_profile="bursty", workers=workers)
        for workers in (1, 2, 4)
    }


def _assert_same_tables(result, reference):
    assert result.report() == reference.report()
    assert result.forwarder_table == reference.forwarder_table
    assert result.validation_table == reference.validation_table


class TestReportCarriesNewTables:
    def test_both_sections_present(self, serial_batch):
        report = serial_batch.report()
        assert FORWARDER_HEADER in report
        assert VALIDATION_HEADER in report

    def test_summary_stays_mode_agnostic(self, serial_batch):
        assert "stream" not in serial_batch.summary()


class TestZeroLossEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_stream_matches_serial_batch(self, serial_batch, workers):
        streamed = _run(mode="stream", workers=workers)
        _assert_same_tables(streamed, serial_batch)

    @pytest.mark.parametrize("workers", [2, 4])
    def test_sharded_batch_matches_serial_batch(self, serial_batch, workers):
        sharded = _run(workers=workers)
        _assert_same_tables(sharded, serial_batch)


class TestBurstyEquivalence:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_stream_matches_batch_same_workers(
        self, bursty_by_workers, workers
    ):
        streamed = _run(
            fault_profile="bursty", mode="stream", workers=workers
        )
        _assert_same_tables(streamed, bursty_by_workers[workers])

    def test_validation_table_invariant_to_workers(self, bursty_by_workers):
        # The validation census is a pure function of campaign knobs
        # (seed, year, latency, loss, fault profile) — never of the
        # execution split — so it must agree even where the probe
        # tables legitimately differ between worker counts.
        tables = {
            workers: result.validation_table
            for workers, result in bursty_by_workers.items()
        }
        assert tables[1] == tables[2] == tables[4]


class TestResumeEquivalence:
    @pytest.mark.parametrize("profile", ["none", "bursty"])
    def test_resumed_report_matches_full_run(
        self, monkeypatch, tmp_path, profile
    ):
        config = _config(
            fault_profile=profile, workers=4, max_shard_retries=0
        )
        checkpoint_dir = tmp_path / "ckpt"
        # Kill shard 3 on its first attempt: the run checkpoints shards
        # 0-2 and exits degraded, a genuine mid-campaign interruption.
        monkeypatch.setenv(CHAOS_RAISE_ENV, "3:99")
        interrupted = run_sharded(
            config, parallelism="inline", checkpoint_dir=checkpoint_dir
        )
        assert interrupted.degraded is not None
        saved = load_shard_checkpoints(
            checkpoint_dir, checkpoint_fingerprint(config)
        )
        assert sorted(saved) == [0, 1, 2]

        monkeypatch.delenv(CHAOS_RAISE_ENV)
        resumed = run_sharded(
            config,
            parallelism="inline",
            checkpoint_dir=checkpoint_dir,
            resume=True,
        )
        full = run_sharded(config, parallelism="inline")
        assert resumed.degraded is None
        _assert_same_tables(resumed, full)


class TestGoldenPins:
    """Exact values at the (2018, 1/65536, seed 3) reference config.

    A drift here means the sampling stream or the overlay RNG moved —
    which silently invalidates every other pinned table in the suite.
    """

    def test_forwarder_table(self, serial_batch):
        table = serial_batch.forwarder_table
        assert table is not None
        assert (table.on_path, table.off_path) == (96, 3)
        assert table.off_path_share == pytest.approx(3.030, abs=5e-4)
        assert {row.upstream: row.fan_in for row in table.rows} == {
            "192.0.2.3": 2,
            "192.0.2.2": 1,
        }

    def test_validation_table(self, serial_batch):
        table = serial_batch.validation_table
        assert table is not None
        assert table.targets == 99
        assert (table.validating, table.non_validating) == (3, 37)
        assert table.unresponsive == 59
        assert table.responsive == 40
        assert table.validating_share == pytest.approx(7.500, abs=5e-4)
