"""Cross-engine conformance: pool vs multicore, byte for byte.

The multicore engine changes *everything* about execution — process
topology, wire format, dispatch granularity — and *nothing* about the
measurement: for a fixed config, every worker count and both engines
must render the serial report byte-identically, under clean and
bursty-fault profiles, through mid-campaign interruption and resume,
and across engines sharing one checkpoint directory (the fingerprint
deliberately excludes the ``engine`` field).

The worker-count matrix runs the multicore engine in-process
(``parallelism="inline"``) — which still routes every outcome through
the ring + codec wire path — so the suite stays fast on small CI
boxes; real child processes and both ring transports get dedicated
cases at one representative worker count.
"""

import dataclasses

import pytest

from repro.core import Campaign, CampaignConfig
from repro.core.multicore import run_multicore
from repro.core.shard import (
    CHAOS_RAISE_ENV,
    checkpoint_fingerprint,
    run_sharded,
)
from repro.datasets.store import load_shard_checkpoints

SCALE = 65536

BASE = CampaignConfig(year=2018, scale=SCALE, seed=3)

WORKER_COUNTS = (1, 2, 4, 8)


def _config(**overrides):
    return dataclasses.replace(BASE, **overrides)


def _pool(**overrides):
    config = _config(**overrides)
    if config.workers > 1:
        return run_sharded(config, parallelism="inline")
    return Campaign(config).run()


def _multicore(parallelism="inline", ring="auto", **overrides):
    config = _config(engine="multicore", **overrides)
    return run_multicore(config, parallelism=parallelism, ring=ring)


def _assert_same_tables(result, reference):
    assert result.report() == reference.report()
    assert result.forwarder_table == reference.forwarder_table
    assert result.validation_table == reference.validation_table


@pytest.fixture(scope="module")
def serial_batch():
    return _pool()


class TestCleanProfileMatrix:
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_multicore_matches_serial(self, serial_batch, workers):
        _assert_same_tables(_multicore(workers=workers), serial_batch)

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_multicore_stream_matches_serial(self, serial_batch, workers):
        streamed = _multicore(
            workers=workers, mode="stream", drop_captures=True
        )
        _assert_same_tables(streamed, serial_batch)


class TestBurstyProfileMatrix:
    # Worker counts are distinct populations under faults (loss lands
    # per-shard, on the shard-derived seed — workers=1 sharded differs
    # from the serial run too), so the reference is the pool *sharded*
    # engine at the same worker count, never the serial run.
    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_multicore_matches_pool_same_workers(self, workers):
        config = _config(fault_profile="bursty", workers=workers)
        pool = run_sharded(config, parallelism="inline")
        multicore = _multicore(fault_profile="bursty", workers=workers)
        _assert_same_tables(multicore, pool)


class TestProcessTransports:
    @pytest.mark.parametrize("ring", ["shm", "pipe"])
    def test_child_processes_match_serial(self, serial_batch, ring):
        result = _multicore(parallelism="process", ring=ring, workers=4)
        assert result.engine_stats["transport"] == ring
        _assert_same_tables(result, serial_batch)

    def test_stream_compact_frames_over_processes(self, serial_batch):
        result = _multicore(
            parallelism="process", workers=4,
            mode="stream", drop_captures=True,
        )
        assert result.engine_stats["compact_frames"] == 4
        _assert_same_tables(result, serial_batch)


class TestResumeMidCampaign:
    @pytest.mark.parametrize("profile", ["none", "bursty"])
    def test_interrupted_multicore_resumes_identically(
        self, monkeypatch, tmp_path, profile
    ):
        config = _config(
            engine="multicore", fault_profile=profile,
            workers=4, max_shard_retries=0,
        )
        checkpoint_dir = tmp_path / "ckpt"
        monkeypatch.setenv(CHAOS_RAISE_ENV, "3:99")
        interrupted = run_multicore(
            config, parallelism="inline", checkpoint_dir=checkpoint_dir
        )
        assert interrupted.degraded is not None
        saved = load_shard_checkpoints(
            checkpoint_dir, checkpoint_fingerprint(config)
        )
        assert sorted(saved) == [0, 1, 2]

        monkeypatch.delenv(CHAOS_RAISE_ENV)
        resumed = run_multicore(
            config,
            parallelism="inline",
            checkpoint_dir=checkpoint_dir,
            resume=True,
        )
        assert resumed.degraded is None
        assert resumed.engine_stats["resumed_shards"] == 3
        full = _pool(fault_profile=profile, workers=4)
        _assert_same_tables(resumed, full)


class TestCheckpointInterchange:
    """One checkpoint directory, two engines: the fingerprint excludes
    ``engine``, so shards written by either engine resume under the
    other."""

    def test_pool_checkpoints_resume_under_multicore(
        self, monkeypatch, tmp_path
    ):
        config = _config(workers=4, max_shard_retries=0)
        checkpoint_dir = tmp_path / "ckpt"
        monkeypatch.setenv(CHAOS_RAISE_ENV, "3:99")
        run_sharded(
            config, parallelism="inline", checkpoint_dir=checkpoint_dir
        )
        monkeypatch.delenv(CHAOS_RAISE_ENV)
        resumed = run_multicore(
            dataclasses.replace(config, engine="multicore"),
            parallelism="inline",
            checkpoint_dir=checkpoint_dir,
            resume=True,
        )
        assert resumed.degraded is None
        _assert_same_tables(resumed, _pool(workers=4))

    def test_multicore_checkpoints_resume_under_pool(
        self, monkeypatch, tmp_path
    ):
        config = _config(workers=4, max_shard_retries=0)
        checkpoint_dir = tmp_path / "ckpt"
        monkeypatch.setenv(CHAOS_RAISE_ENV, "2:99")
        run_multicore(
            dataclasses.replace(config, engine="multicore"),
            parallelism="inline",
            checkpoint_dir=checkpoint_dir,
        )
        monkeypatch.delenv(CHAOS_RAISE_ENV)
        resumed = run_sharded(
            config,
            parallelism="inline",
            checkpoint_dir=checkpoint_dir,
            resume=True,
        )
        assert resumed.degraded is None
        _assert_same_tables(resumed, _pool(workers=4))
