"""Policy-rung conformance: byte-identity across execution engines.

The policy posture is opt-in (``attack_policy``), and two contracts
hold simultaneously:

* **off** — the default ladder, every report and golden pin, is
  byte-identical to a build that has never heard of policies;
* **on** — the extended ladder's decisions are a pure function of the
  seed: serial batch, sharded pool (any worker count), streaming, and
  the multicore engine all render byte-identical matrices and policy
  decision tables.

Golden pins freeze the policy cells at the seed-3 reference config, the
same convention as ``test_attack_determinism``: a drift means a rule,
lane, or schedule moved — a conformance break, not a tuning detail.
"""

import dataclasses

import pytest

from repro.attacks import (
    AttackSuiteConfig,
    POLICY_HEADER,
    postures_with_policy,
    render_attack_matrix,
    run_attack_matrix,
)
from repro.core import Campaign, CampaignConfig
from repro.core.multicore import run_multicore
from repro.core.shard import run_sharded

SCALE = 65536

BASE = CampaignConfig(
    year=2018, scale=SCALE, seed=3, attack_suite=True, attack_policy=True
)


def _config(**overrides):
    return dataclasses.replace(BASE, **overrides)


def _run(**overrides):
    config = _config(**overrides)
    if config.engine == "multicore":
        return run_multicore(config, parallelism="inline")
    if config.workers > 1:
        return run_sharded(config, parallelism="inline")
    return Campaign(config).run()


@pytest.fixture(scope="module")
def serial_batch():
    return _run()


class TestLadderShape:
    def test_policy_rung_appends_without_reshuffling(self, serial_batch):
        matrix = serial_batch.attack_matrix
        assert matrix.postures == (
            "undefended", "rrl", "quota", "hardened", "policy"
        )
        assert len(matrix.rows) == 20
        # The original sixteen cells are the *same cells* the default
        # ladder produces: the policy lane only appends.
        default = run_attack_matrix(AttackSuiteConfig(seed=3))
        for cell in default.rows:
            assert matrix.cell(cell.family, cell.posture) == cell

    def test_report_carries_the_decision_table(self, serial_batch):
        assert POLICY_HEADER in serial_batch.report()

    def test_default_off_has_no_policy_trace(self):
        plain = _run(attack_policy=False)
        report = plain.report()
        assert POLICY_HEADER not in report
        assert "policy" not in report
        assert len(plain.attack_matrix.rows) == 16


class TestCrossEngineEquivalence:
    def _assert_same(self, result, reference):
        assert result.attack_matrix == reference.attack_matrix
        assert result.report() == reference.report()

    @pytest.mark.parametrize("workers", [2, 4])
    def test_sharded_pool_matches_serial(self, serial_batch, workers):
        self._assert_same(_run(workers=workers), serial_batch)

    def test_stream_matches_serial(self, serial_batch):
        self._assert_same(_run(mode="stream", workers=2), serial_batch)

    @pytest.mark.parametrize("workers", [1, 4])
    def test_multicore_matches_serial(self, serial_batch, workers):
        self._assert_same(
            _run(engine="multicore", workers=workers), serial_batch
        )

    def test_standalone_matrix_matches_campaign(self, serial_batch):
        standalone = run_attack_matrix(
            AttackSuiteConfig(seed=3, postures=postures_with_policy())
        )
        assert standalone == serial_batch.attack_matrix
        assert (
            render_attack_matrix(standalone)
            in serial_batch.report()
        )


class TestGoldenPolicyPins:
    """Exact policy-cell values at seed 3 (the reference config)."""

    @pytest.fixture(scope="class")
    def matrix(self, serial_batch):
        return serial_batch.attack_matrix

    def test_nxns_neutralized_by_qname_block(self, matrix):
        cell = matrix.cell("nxns", "policy")
        assert cell.policy_nxdomain == 96
        assert cell.policy_blocked == 96
        assert cell.auth_queries == 0
        assert cell.amplification == pytest.approx(0.0)

    def test_water_torture_neutralized_by_label_block(self, matrix):
        cell = matrix.cell("water_torture", "policy")
        assert cell.policy_nxdomain == 96
        assert cell.auth_queries == 0

    def test_reflection_deflated_by_sinkhole(self, matrix):
        cell = matrix.cell("reflection", "policy")
        assert cell.policy_sinkholed == 108
        assert cell.victim_bytes == 8640
        assert cell.victim_packets == 108
        assert cell.amplification == pytest.approx(1.0667, abs=5e-4)
        assert cell.auth_queries == 0

    def test_baseline_policy_cell_decides_nothing(self, matrix):
        cell = matrix.cell("baseline", "policy")
        assert cell.policy_blocked == 0
        assert cell.policy_sinkholed == 0

    def test_benign_plane_untouched_by_policy(self, matrix):
        for cell in matrix.rows:
            assert (cell.benign_sent, cell.benign_answered) == (96, 96)

    def test_policy_counts_zero_outside_the_policy_rung(self, matrix):
        for cell in matrix.rows:
            if cell.posture != "policy":
                assert cell.policy_blocked == 0
                assert cell.policy_sinkholed == 0
                assert cell.policy_routed == 0
                assert cell.policy_rewritten == 0
