"""Client workload and exposure experiment tests."""

import pytest

from repro.clients import (
    ClientWorkload,
    ExposureExperiment,
    WorkloadConfig,
    render_exposure,
)


class TestWorkload:
    def make(self, **overrides):
        config_kwargs = dict(clients=50, queries_per_client=5, domains=20)
        config_kwargs.update(overrides)
        config = WorkloadConfig(**config_kwargs)
        return ClientWorkload(config, [f"100.0.0.{i}" for i in range(1, 11)], seed=3)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(clients=0)
        with pytest.raises(ValueError):
            WorkloadConfig(domains=0)
        with pytest.raises(ValueError):
            ClientWorkload(WorkloadConfig(), [], seed=0)

    def test_stream_size(self):
        workload = self.make()
        assert len(workload.queries()) == 50 * 5

    def test_deterministic(self):
        first = self.make().queries()
        second = self.make().queries()
        assert first == second

    def test_every_client_bound_to_one_resolver(self):
        workload = self.make()
        for query in workload.queries():
            assert workload.client_resolver[query.client_id] == query.resolver_ip

    def test_zipf_popularity_skew(self):
        from collections import Counter

        workload = self.make(clients=200, queries_per_client=20)
        counts = Counter(q.qname for q in workload.queries())
        ranked = [count for _, count in counts.most_common()]
        # Head domain much hotter than the tail.
        assert ranked[0] > 3 * ranked[-1]

    def test_clients_using(self):
        workload = self.make()
        some_resolver = workload.client_resolver[0]
        users = workload.clients_using({some_resolver})
        assert 0 in users


class TestExposureExperiment:
    def test_no_malicious_no_exposure(self):
        experiment = ExposureExperiment(
            workload=WorkloadConfig(clients=30, queries_per_client=4, domains=10),
            resolver_count=10,
            malicious_share=0.0,
            seed=1,
        )
        report = experiment.run()
        assert report.malicious_resolvers == 0
        assert report.queries_hijacked == 0
        assert report.clients_exposed == 0
        # Standard resolvers answered essentially everything.
        assert report.queries_answered > 0.9 * report.queries_total

    def test_exposure_tracks_binding_share(self):
        experiment = ExposureExperiment(
            workload=WorkloadConfig(clients=60, queries_per_client=5, domains=10),
            resolver_count=10,
            malicious_share=0.2,
            seed=2,
        )
        report = experiment.run()
        assert report.malicious_resolvers == 2
        # Every client bound to a manipulator gets hijacked on every query.
        assert report.clients_exposed == report.clients_on_malicious
        assert report.client_exposure_rate == pytest.approx(
            report.expected_client_share
        )
        assert report.queries_hijacked > 0

    def test_full_malicious_fleet(self):
        experiment = ExposureExperiment(
            workload=WorkloadConfig(clients=20, queries_per_client=3, domains=5),
            resolver_count=5,
            malicious_share=1.0,
            seed=3,
        )
        report = experiment.run()
        assert report.queries_hijacked == report.queries_answered
        assert report.clients_exposed == report.clients_total

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            ExposureExperiment(malicious_share=1.5)
        with pytest.raises(ValueError):
            ExposureExperiment(resolver_count=0)
        with pytest.raises(ValueError):
            ExposureExperiment(malicious_popularity="sideways")

    def test_popularity_placement_drives_exposure(self):
        """Same manipulator count, wildly different exposure: the paper's
        passivity argument, quantified."""

        def run(placement):
            return ExposureExperiment(
                workload=WorkloadConfig(
                    clients=120, queries_per_client=4, domains=10,
                    resolver_zipf_s=1.4,
                ),
                resolver_count=20,
                malicious_share=0.1,
                seed=6,
                malicious_popularity=placement,
            ).run()

        head = run("head")
        tail = run("tail")
        assert head.malicious_resolvers == tail.malicious_resolvers == 2
        assert head.clients_exposed > 3 * max(tail.clients_exposed, 1)

    def test_random_placement_deterministic(self):
        kwargs = dict(
            workload=WorkloadConfig(clients=30, queries_per_client=2, domains=5),
            resolver_count=10, malicious_share=0.2, seed=8,
            malicious_popularity="random",
        )
        first = ExposureExperiment(**kwargs).run()
        second = ExposureExperiment(**kwargs).run()
        assert first == second

    def test_render(self):
        experiment = ExposureExperiment(
            workload=WorkloadConfig(clients=20, queries_per_client=2, domains=5),
            resolver_count=5,
            malicious_share=0.2,
            seed=4,
        )
        text = render_exposure(experiment.run())
        assert "Client exposure" in text
        assert "hijacked" in text
