"""Record-injection experiment tests."""

import pytest

from repro.injection import InjectionExperiment, render_injection
from repro.injection.experiment import POISON_ADDRESS, REAL_VICTIM_ADDRESS


class TestInjectionExperiment:
    def test_detects_exactly_the_vulnerable_resolvers(self):
        experiment = InjectionExperiment(
            resolver_count=20, vulnerable_share=0.5, seed=3
        )
        report = experiment.run()
        assert set(report.vulnerable) == experiment.truly_vulnerable
        assert report.unresponsive == ()
        assert len(report.vulnerable) + len(report.safe) == 20

    def test_all_safe_fleet(self):
        report = InjectionExperiment(
            resolver_count=10, vulnerable_share=0.0, seed=1
        ).run()
        assert report.vulnerable == ()
        assert report.vulnerable_share == 0.0
        assert len(report.safe) == 10

    def test_all_vulnerable_fleet(self):
        report = InjectionExperiment(
            resolver_count=10, vulnerable_share=1.0, seed=1
        ).run()
        assert len(report.vulnerable) == 10
        assert report.vulnerable_share == 1.0

    def test_klein_calibration(self):
        # Default share mirrors Klein et al.'s ">92%".
        experiment = InjectionExperiment(resolver_count=100, seed=7)
        report = experiment.run()
        assert 0.85 <= report.vulnerable_share <= 1.0

    def test_safe_resolvers_answer_honestly(self):
        experiment = InjectionExperiment(
            resolver_count=12, vulnerable_share=0.5, seed=5
        )
        report = experiment.run()
        # Safe resolvers must have resolved the true victim address
        # (not just refused) for the check to be meaningful.
        assert report.safe
        assert POISON_ADDRESS != REAL_VICTIM_ADDRESS

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            InjectionExperiment(resolver_count=0)
        with pytest.raises(ValueError):
            InjectionExperiment(vulnerable_share=-0.1)

    def test_render(self):
        report = InjectionExperiment(resolver_count=8, seed=2).run()
        text = render_injection(report)
        assert "Record-injection test" in text
        assert "Klein" in text

    def test_deterministic(self):
        first = InjectionExperiment(resolver_count=15, seed=9).run()
        second = InjectionExperiment(resolver_count=15, seed=9).run()
        assert first == second
