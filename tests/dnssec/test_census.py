"""DNSSEC validator census tests."""

import pytest

from repro.core import Campaign, CampaignConfig
from repro.dnssec import (
    ValidatorScanner,
    assign_validators,
    render_validator_census,
    validator_share_for_year,
)


@pytest.fixture(scope="module")
def campaign():
    return Campaign(CampaignConfig(year=2018, scale=16384, seed=13)).run()


class TestAssignment:
    def test_deterministic(self, campaign):
        first = assign_validators(campaign.population, 2018, seed=1)
        second = assign_validators(campaign.population, 2018, seed=1)
        assert first == second

    def test_share_roughly_calibrated(self, campaign):
        validators = assign_validators(campaign.population, 2018, seed=1)
        share = len(validators) / campaign.population.host_count
        assert abs(share - validator_share_for_year(2018)) < 0.05

    def test_year_shares(self):
        assert validator_share_for_year(2013) < validator_share_for_year(2018)


class TestScanner:
    def test_census_matches_assignment(self, campaign):
        # The campaign assigned validators at deploy time with the same
        # (population, year, seed) triple.
        expected = campaign.dnssec_validators
        targets = sorted(campaign.population.address_set())
        scanner = ValidatorScanner(
            campaign.network, campaign.hierarchy.auth, campaign.hierarchy.sld
        )
        census = scanner.scan(targets)
        # Only genuinely resolving hosts can earn AD: the measured
        # validating set is the assigned validators that answer correctly.
        assert census.validating <= expected
        assert census.validating, "expected at least one validating resolver"
        # Everyone who resolved but wasn't assigned shows AD=0.
        assert census.non_validating.isdisjoint(expected - census.validating) or True
        assert census.answered <= len(targets)

    def test_share_in_plausible_band(self, campaign):
        targets = sorted(campaign.population.address_set())
        scanner = ValidatorScanner(
            campaign.network, campaign.hierarchy.auth, campaign.hierarchy.sld,
            scanner_ip="132.170.3.19", source_port=31500,
        )
        census = scanner.scan(targets)
        # ~12% of *all* resolvers validate, but only answer-bearing hosts
        # resolve the probe; the share among answerers lands near the
        # calibrated rate.
        assert 0.02 < census.validating_share < 0.30

    def test_probe_zone_cleaned_up(self, campaign):
        auth = campaign.hierarchy.auth
        scanner = ValidatorScanner(
            campaign.network, auth, campaign.hierarchy.sld,
            scanner_ip="132.170.3.20", source_port=31501,
        )
        scanner.scan(sorted(campaign.population.address_set())[:10])
        assert not auth.has_subdomain_loaded(scanner.probe_qname)

    def test_render(self, campaign):
        targets = sorted(campaign.population.address_set())[:40]
        scanner = ValidatorScanner(
            campaign.network, campaign.hierarchy.auth, campaign.hierarchy.sld,
            scanner_ip="132.170.3.21", source_port=31502,
        )
        census = scanner.scan(targets)
        text = render_validator_census(census, 2018)
        assert "DNSSEC validator census" in text
        assert "AD=1" in text

    def test_disabled_dnssec_yields_no_validators(self):
        result = Campaign(
            CampaignConfig(year=2018, scale=65536, seed=3, dnssec=False)
        ).run()
        assert result.dnssec_validators == set()
        scanner = ValidatorScanner(
            result.network, result.hierarchy.auth, result.hierarchy.sld
        )
        census = scanner.scan(sorted(result.population.address_set()))
        assert census.validating == set()
