"""Bogus-probe validation census: zone, signing server, classification.

A hand-built mini world with known ground truth — one validating
resolver, one non-validating resolver, one transparent forwarder, one
dead host — must classify exactly. The zone itself is checked for the
one property the whole census rests on: the control name verifies, the
bogus name can never verify, and nothing else differs.
"""

import pytest

from repro.dnslib.constants import QueryType, Rcode
from repro.dnslib.message import make_query
from repro.dnslib.signing import verify_rrsig
from repro.dnslib.wire import decode_message, encode_message
from repro.dnssec.validation import (
    BOGUS_LABEL,
    CONTROL_LABEL,
    SigningAuthoritativeServer,
    ValidationScanner,
    build_validation_zone,
    render_validation_census,
)
from repro.dnssrv.hierarchy import build_hierarchy
from repro.netsim.network import Network
from repro.netsim.packet import Datagram
from repro.resolvers.behavior import AnswerKind, BehaviorSpec, ResponseMode
from repro.resolvers.host import BehaviorHost

SLD = "ucfsealresearch.net"
ORIGIN = f"dnssec-validation.{SLD}"
CONTROL = f"{CONTROL_LABEL}.{ORIGIN}"
BOGUS = f"{BOGUS_LABEL}.{ORIGIN}"


class TestValidationZone:
    def test_control_signature_verifies(self):
        zone = build_validation_zone(SLD)
        a_records = zone.rrset(CONTROL, QueryType.A)
        [rrsig] = zone.rrset(CONTROL, QueryType.RRSIG)
        assert verify_rrsig(rrsig.data, a_records)

    def test_bogus_signature_never_verifies(self):
        zone = build_validation_zone(SLD)
        a_records = zone.rrset(BOGUS, QueryType.A)
        [rrsig] = zone.rrset(BOGUS, QueryType.RRSIG)
        assert not verify_rrsig(rrsig.data, a_records)

    def test_both_names_uncacheable(self):
        zone = build_validation_zone(SLD)
        for name in (CONTROL, BOGUS):
            [record] = zone.rrset(name, QueryType.A)
            assert record.ttl == 0


class TestSigningServer:
    def _respond(self, qname):
        server = SigningAuthoritativeServer("45.76.1.10")
        server.load_zone(build_validation_zone(SLD))
        return server.respond(make_query(qname, msg_id=3), now=0.0)

    def test_answers_carry_the_matching_rrsig(self):
        response = self._respond(CONTROL)
        rtypes = sorted(int(record.rtype) for record in response.answers)
        assert rtypes == [int(QueryType.A), int(QueryType.RRSIG)]
        [rrsig] = [
            record for record in response.answers
            if int(record.rtype) == int(QueryType.RRSIG)
        ]
        assert int(rrsig.data.type_covered) == int(QueryType.A)

    def test_bogus_rrsig_shipped_verbatim(self):
        response = self._respond(BOGUS)
        zone = build_validation_zone(SLD)
        [stored] = zone.rrset(BOGUS, QueryType.RRSIG)
        [shipped] = [
            record for record in response.answers
            if int(record.rtype) == int(QueryType.RRSIG)
        ]
        assert shipped.data.signature == stored.data.signature

    def test_unanswered_query_gains_no_rrsig(self):
        response = self._respond(f"missing.{ORIGIN}")
        assert response.answers == []

    def test_response_round_trips_through_the_codec(self):
        response = self._respond(BOGUS)
        wire = encode_message(response)
        assert encode_message(decode_message(wire)) == wire


def _resolve_spec(name="open"):
    return BehaviorSpec(
        name=name, mode=ResponseMode.RESOLVE, ra=True, aa=False,
        answer_kind=AnswerKind.CORRECT,
    )


@pytest.fixture()
def mini_world():
    network = Network(seed=4)
    hierarchy = build_hierarchy(network)
    auth = hierarchy.auth
    # Swap the hierarchy's auth for the signing variant at the same ip.
    signing = SigningAuthoritativeServer(auth.ip, zone_history=None)
    network.unbind(auth.ip, 53)
    signing.attach(network)

    validating = "198.18.0.1"
    plain = "198.18.0.2"
    forwarder = "198.18.0.3"
    dead = "198.18.0.4"
    upstream = "203.10.0.9"
    BehaviorHost(
        validating, _resolve_spec("validator"), signing.ip,
        dnssec_validating=True,
    ).attach(network)
    BehaviorHost(plain, _resolve_spec(), signing.ip).attach(network)
    BehaviorHost(upstream, _resolve_spec("upstream"), signing.ip).attach(
        network
    )
    BehaviorHost(
        forwarder,
        BehaviorSpec(
            name="transparent", mode=ResponseMode.TRANSPARENT, ra=True,
            aa=False, answer_kind=AnswerKind.CORRECT, forward_to=upstream,
        ),
        signing.ip,
    ).attach(network)
    targets = [validating, plain, forwarder, dead]
    return network, signing, targets


class TestScannerClassification:
    def test_planted_mix_recovered_exactly(self, mini_world):
        network, signing, targets = mini_world
        validating, plain, forwarder, dead = targets
        census = ValidationScanner(network, signing, sld=SLD).scan(targets)
        assert census.validating == {validating}
        assert census.non_validating == {plain}
        # The forwarder's answers return from its unprobed upstream and
        # are filtered out of the target join; on this probe it is
        # indistinguishable from a dead host.
        assert census.unresponsive == {forwarder, dead}
        assert census.targets == 4

    def test_table_mirrors_the_sets(self, mini_world):
        network, signing, targets = mini_world
        census = ValidationScanner(network, signing, sld=SLD).scan(targets)
        table = census.table()
        assert table.targets == 4
        assert (table.validating, table.non_validating) == (1, 1)
        assert table.unresponsive == 2
        assert table.responsive == 2
        assert table.validating_share == pytest.approx(50.0)

    def test_render_mentions_every_bucket(self, mini_world):
        network, signing, targets = mini_world
        census = ValidationScanner(network, signing, sld=SLD).scan(targets)
        text = render_validation_census(census, 2018)
        assert "DNSSEC validation behavior (2018)" in text
        assert "validating (bogus blocked): 1" in text
        assert "unresponsive:               2" in text

    def test_zone_unloaded_after_the_scan(self, mini_world):
        network, signing, targets = mini_world
        ValidationScanner(network, signing, sld=SLD).scan(targets)
        response = signing.respond(make_query(CONTROL, msg_id=1), now=0.0)
        assert response.rcode != Rcode.NOERROR or not response.answers


class TestValidatorEndToEnd:
    def test_validator_servfails_the_bogus_name_only(self, mini_world):
        network, signing, targets = mini_world
        validating = targets[0]
        signing.load_zone(build_validation_zone(SLD))
        replies = []
        network.bind(
            "132.170.9.9", 4000, lambda dgram, net: replies.append(dgram)
        )
        for msg_id, qname in enumerate((CONTROL, BOGUS)):
            network.send(
                Datagram(
                    "132.170.9.9", 4000, validating, 53,
                    encode_message(make_query(qname, msg_id=msg_id)),
                )
            )
        network.run()
        by_qname = {
            decoded.qname: decoded
            for decoded in map(
                lambda dgram: decode_message(dgram.payload), replies
            )
        }
        assert by_qname[CONTROL].first_a_record() is not None
        assert by_qname[BOGUS].rcode == Rcode.SERVFAIL
        assert by_qname[BOGUS].first_a_record() is None
