"""End-to-end integration: scan -> save -> reload -> re-scan fidelity.

One coarse campaign exercised through every major subsystem in a
single flow: the scan itself, fingerprinting, the DNSSEC census,
dataset persistence, offline re-analysis, markdown reporting, and a
monitoring epoch — asserting cross-subsystem consistency rather than
any one module's behavior.
"""

import pytest

from repro.core import Campaign, CampaignConfig
from repro.datasets import analyze_dataset, load_campaign, save_campaign
from repro.dnssec import ValidatorScanner
from repro.fingerprint import VersionScanner, take_census
from repro.monitor import ChurnModel, evolve_population, snapshot_from_result
from repro.reporting import campaign_markdown

SCALE = 16384
SEED = 23


@pytest.fixture(scope="module")
def result():
    return Campaign(CampaignConfig(year=2018, scale=SCALE, seed=SEED)).run()


class TestEndToEnd:
    def test_cross_table_consistency(self, result):
        """Every table must agree with every other table."""
        correctness = result.correctness
        ra, aa = result.ra_table, result.aa_table
        rcode = result.rcode_table
        # Flag tables partition the same universe.
        assert ra.total == aa.total == correctness.r2
        assert ra.zero.incorrect + ra.one.incorrect == correctness.incorrect
        assert aa.zero.correct + aa.one.correct == correctness.correct
        # rcode rows partition by answer presence.
        assert rcode.total_with == correctness.with_answer
        assert rcode.total_without == correctness.without_answer
        # Table VII covers exactly the incorrect subset.
        assert result.incorrect_forms.total_r2 == correctness.incorrect
        # Malicious tables agree with each other.
        assert result.malicious_flags.total == result.malicious_categories.total_r2
        assert sum(result.country_distribution.values()) == \
            result.malicious_flags.total

    def test_flows_consistent_with_population(self, result):
        assert result.flow_set.r2_count == result.population.host_count
        # Q2 equals resolving hosts plus their ghost duplicates.
        resolving = [
            a for a in result.population.assignments
            if a.spec.contacts_auth
        ]
        expected_q2 = len(resolving) + sum(a.spec.extra_q2 for a in resolving)
        assert result.flow_set.q2_count == expected_q2

    def test_scanners_compose_on_one_network(self, result):
        targets = sorted(result.population.address_set())
        census = take_census(
            VersionScanner(result.network).scan(targets), len(targets)
        )
        validators = ValidatorScanner(
            result.network, result.hierarchy.auth, result.hierarchy.sld
        ).scan(targets)
        assert census.revealing + census.refused == len(targets)
        assert validators.validating <= result.dnssec_validators

    def test_persistence_roundtrip_preserves_tables(self, result, tmp_path):
        directory = save_campaign(result, tmp_path / "ds")
        analysis = analyze_dataset(load_campaign(directory))
        assert analysis.correctness == result.correctness
        assert analysis.malicious_categories == result.malicious_categories

    def test_markdown_report_quotes_measured_numbers(self, result):
        document = campaign_markdown(result)
        assert f"{result.estimates.ra_and_correct:,}" in document

    def test_monitoring_epoch_on_top(self, result):
        snapshot = snapshot_from_result(result)
        assert snapshot.open_resolvers == result.estimates.ra_and_correct
        universe = Campaign(
            CampaignConfig(year=2018, scale=SCALE, seed=SEED)
        ).build_universe()
        evolved = evolve_population(
            result.population, ChurnModel(death_rate=0.1, birth_rate=0.1),
            seed=1, universe=universe,
        )
        assert evolved.host_count > 0
        assert evolved.cymon is result.population.cymon  # shared intel
