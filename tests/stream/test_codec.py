"""Round-trip tests for the compact shard-outcome codec.

The codec is a wire format: every aggregate field that feeds a table
must survive encode→decode exactly, and the encoding itself must be
deterministic (the multicore engine ships these bytes between
processes, and the conformance suite's byte-identity contract rides on
them). Rather than hand-build aggregates field by field, the tests run
small real campaigns — batch for the non-compact refusal, streaming
``drop_captures`` for the compact path — so the encoded state is
exactly what a multicore worker would ship.
"""

import dataclasses

import pytest

from repro.core import Campaign, CampaignConfig
from repro.core.shard import ShardTask, run_shard
from repro.stream.codec import (
    OUTCOME_BUDGET_BYTES,
    decode_aggregate,
    decode_outcome,
    decode_stream_stats,
    encode_aggregate,
    encode_outcome,
    encode_stream_stats,
)

SCALE = 65536

STREAM_CONFIG = CampaignConfig(
    year=2018, scale=SCALE, seed=3, mode="stream", drop_captures=True
)
BATCH_CONFIG = CampaignConfig(year=2018, scale=SCALE, seed=3)


def _stream_outcome(index=0, workers=2):
    config = dataclasses.replace(STREAM_CONFIG, workers=workers)
    return run_shard(ShardTask(config=config, index=index, workers=workers))


@pytest.fixture(scope="module")
def outcome():
    return _stream_outcome()


class TestAggregateRoundTrip:
    def test_tables_survive(self, outcome):
        aggregate = outcome.aggregate
        decoded = decode_aggregate(encode_aggregate(aggregate))
        assert decoded == aggregate

    def test_encoding_is_deterministic(self, outcome):
        assert encode_aggregate(outcome.aggregate) == encode_aggregate(
            outcome.aggregate
        )

    def test_faulty_aggregate_round_trips(self):
        # A bursty run exercises the retry/rcode/unjoinable dict fields
        # a clean run leaves sparse.
        config = dataclasses.replace(
            STREAM_CONFIG, fault_profile="bursty", workers=2
        )
        shard = run_shard(ShardTask(config=config, index=1, workers=2))
        decoded = decode_aggregate(encode_aggregate(shard.aggregate))
        assert decoded == shard.aggregate


class TestStreamStatsRoundTrip:
    def test_all_counters_survive(self, outcome):
        stats = outcome.stream_stats
        assert stats is not None
        decoded = decode_stream_stats(encode_stream_stats(stats))
        assert decoded == stats


class TestOutcomeRoundTrip:
    def test_compact_outcome_round_trips(self, outcome):
        blob = encode_outcome(outcome)
        assert blob is not None
        decoded = decode_outcome(blob)
        assert decoded.index == outcome.index
        assert decoded.aggregate == outcome.aggregate
        assert decoded.stream_stats == outcome.stream_stats
        assert decoded.capture.q1_sent == outcome.capture.q1_sent
        assert decoded.capture.start_time == outcome.capture.start_time
        assert decoded.capture.end_time == outcome.capture.end_time
        assert (
            decoded.capture.cluster_stats == outcome.capture.cluster_stats
        )
        assert decoded.flow_set.flows == {}
        assert decoded.query_log == []

    def test_batch_outcome_refused(self):
        # Batch shards carry O(probes) raw state the compact format
        # deliberately cannot express; the engine falls back to pickle.
        config = dataclasses.replace(BATCH_CONFIG, workers=2)
        shard = run_shard(ShardTask(config=config, index=0, workers=2))
        assert encode_outcome(shard) is None

    def test_compact_blob_is_small(self, outcome):
        blob = encode_outcome(outcome)
        assert len(blob) < OUTCOME_BUDGET_BYTES

    def test_telemetry_snapshot_survives(self):
        from repro.telemetry import TelemetryConfig

        config = dataclasses.replace(STREAM_CONFIG, workers=2)
        shard = run_shard(
            ShardTask(
                config=config, index=0, workers=2,
                telemetry=TelemetryConfig(),
            )
        )
        assert shard.telemetry is not None
        decoded = decode_outcome(encode_outcome(shard))
        assert decoded.telemetry == shard.telemetry
