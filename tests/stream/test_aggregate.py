"""TableAggregate unit laws: fold/batch equivalence and merge algebra."""

import random

import pytest

from repro.analysis.correctness import measure_correctness
from repro.analysis.empty_question import measure_empty_question
from repro.analysis.headers import (
    measure_flag_table,
    measure_open_resolver_estimates,
    measure_rcode_table,
)
from repro.analysis.incorrect import measure_incorrect_forms
from repro.prober.capture import R2View
from repro.stream.aggregate import TableAggregate, merge_aggregates

TRUTH = "10.9.9.9"


def _view(
    qname="or000.0000001.example.net",
    src_ip="198.51.100.7",
    answers=None,
    ra=True,
    aa=False,
    rcode=0,
    malformed=False,
):
    answers = answers if answers is not None else [("ip", TRUTH)]
    return R2View(
        timestamp=1.0,
        src_ip=src_ip,
        ra=ra,
        aa=aa,
        rcode=rcode,
        has_question=qname is not None,
        qname=qname,
        answers=answers,
        malformed_answer=malformed,
    )


def _view_population(seed=1234, count=400):
    """A messy synthetic view set covering every classification path."""
    rng = random.Random(seed)
    views = []
    for index in range(count):
        kind = rng.randrange(6)
        qname = f"or{index:03d}.{index:07d}.example.net"
        if kind == 0:  # correct
            views.append(_view(qname=qname, ra=rng.random() < 0.5))
        elif kind == 1:  # no answer
            views.append(
                _view(qname=qname, answers=[], rcode=rng.choice([0, 2, 3, 5]))
            )
        elif kind == 2:  # incorrect IP destination (small pool -> collisions)
            dest = f"203.0.113.{rng.randrange(1, 9)}"
            views.append(
                _view(
                    qname=qname,
                    src_ip=f"192.0.2.{rng.randrange(1, 60)}",
                    answers=[("ip", dest)],
                    ra=rng.random() < 0.7,
                    aa=rng.random() < 0.2,
                )
            )
        elif kind == 3:  # garbage forms
            form = rng.choice(["url", "string", "other"])
            views.append(
                _view(qname=qname, answers=[(form, f"junk-{rng.randrange(5)}")])
            )
        elif kind == 4:  # malformed answer section
            views.append(_view(qname=qname, answers=[], malformed=True))
        else:  # unjoinable (empty question)
            answers = rng.choice(
                [[], [("ip", "10.0.0.8")], [("ip", "8.8.8.8")],
                 [("string", "x")]]
            )
            views.append(
                _view(qname=None, answers=answers, rcode=rng.choice([0, 1, 5]))
            )
    return views


def _fold(views):
    aggregate = TableAggregate(TRUTH)
    for view in views:
        if view.qname is None:
            aggregate.add_unjoinable(view)
        else:
            aggregate.add_view(view)
    return aggregate


def _split(items, parts, rng):
    buckets = [[] for _ in range(parts)]
    for item in items:
        buckets[rng.randrange(parts)].append(item)
    return buckets


class TestFoldBatchEquivalence(object):
    def test_matches_every_batch_analyzer(self):
        views = _view_population()
        joined = [view for view in views if view.qname is not None]
        unjoinable = [view for view in views if view.qname is None]
        aggregate = _fold(views)
        assert aggregate.correctness_table() == measure_correctness(
            joined, TRUTH
        )
        assert aggregate.flag_table("ra") == measure_flag_table(
            joined, TRUTH, "ra"
        )
        assert aggregate.flag_table("aa") == measure_flag_table(
            joined, TRUTH, "aa"
        )
        assert aggregate.rcode_table() == measure_rcode_table(joined)
        assert aggregate.estimates() == measure_open_resolver_estimates(
            joined, TRUTH
        )
        assert aggregate.incorrect_forms() == measure_incorrect_forms(
            joined, TRUTH
        )
        assert aggregate.empty_question() == measure_empty_question(unjoinable)

    def test_r2_total_counts_joined_plus_unjoinable(self):
        views = _view_population()
        aggregate = _fold(views)
        assert aggregate.r2_total == len(views)

    def test_flag_table_rejects_unknown_flag(self):
        with pytest.raises(ValueError):
            TableAggregate(TRUTH).flag_table("rd")


class TestMergeLaws(object):
    def test_merge_equals_single_fold_any_partition(self):
        views = _view_population()
        whole = _fold(views)
        for seed in (1, 2, 3):
            rng = random.Random(seed)
            parts = [_fold(bucket) for bucket in _split(views, 4, rng)]
            rng.shuffle(parts)
            merged = merge_aggregates(parts)
            assert merged == whole

    def test_merge_is_commutative(self):
        views = _view_population()
        rng = random.Random(99)
        a_views, b_views = _split(views, 2, rng)
        ab = _fold(a_views)
        ab.merge(_fold(b_views))
        ba = _fold(b_views)
        ba.merge(_fold(a_views))
        assert ab == ba

    def test_merge_rejects_mismatched_truth(self):
        with pytest.raises(ValueError):
            TableAggregate(TRUTH).merge(TableAggregate("10.1.1.1"))

    def test_merge_zero_aggregates_rejected(self):
        with pytest.raises(ValueError):
            merge_aggregates([])

    def test_counts_are_additive(self):
        left = TableAggregate(TRUTH)
        left.add_counts(3, 3)
        right = TableAggregate(TRUTH)
        right.add_counts(4, 4)
        left.merge(right)
        assert left.q2_total == left.r1_total == 7
