"""Eviction-boundary regression: the off-path R2 that arrives late.

A transparent forwarder's answer travels an extra relay hop, so its R2
can land *after* the flow's activity clock has gone quiet for a full
horizon. The sweep must not evict a pending forwarder flow (target
bound, Q2 served, no R2 yet) — evicting it would discard the target
binding, and the late answer would fold as an on-path view from the
upstream's address instead of an off-path view for the probed target.
These tests pin the exact boundary: a sweep at ``last_activity +
horizon`` (and far beyond) with the R2 still in flight.
"""

from repro.stream.aggregate import TableAggregate
from repro.stream.assembler import FlowAssembler

TRUTH = "10.9.9.9"
QNAME = "or000x0000001.ucfsealresearch.net"
TARGET = "198.51.100.7"   # the probed transparent forwarder
UPSTREAM = "192.0.2.3"    # the shared upstream that answers off-path


def r2_payload(qname=QNAME, answer_ip=TRUTH):
    from repro.dnslib.constants import QueryType
    from repro.dnslib.message import make_query, make_response
    from repro.dnslib.records import AData, ResourceRecord
    from repro.dnslib.wire import encode_message

    return encode_message(
        make_response(
            make_query(qname, msg_id=7),
            answers=[ResourceRecord(qname, QueryType.A, data=AData(answer_ip))],
        )
    )


def make_assembler(**kwargs):
    aggregate = TableAggregate(TRUTH)
    kwargs.setdefault("response_window", 5.0)
    return FlowAssembler(aggregate, **kwargs), aggregate


def start_forwarder_flow(assembler):
    """Q1 to the forwarder, relay to the upstream, Q2 at the auth."""
    assembler.on_q1(0.0, QNAME, dst_ip=TARGET)
    assembler.on_forward(0.1, QNAME)
    assembler.on_query_served(0.2, QNAME)


class TestPendingFlowSurvivesTheBoundary:
    def test_sweep_at_exact_horizon_keeps_the_flow(self):
        assembler, _ = make_assembler()
        start_forwarder_flow(assembler)
        # Watermark exactly one horizon past the last activity — the
        # first instant an ordinary settled flow becomes evictable.
        assert assembler.sweep(0.2 + assembler.horizon) == 0
        assert assembler.live_flows == 1

    def test_high_latency_r2_joins_after_many_horizons(self):
        assembler, aggregate = make_assembler()
        start_forwarder_flow(assembler)
        assembler.sweep(0.2 + assembler.horizon)
        assembler.sweep(0.2 + 3 * assembler.horizon)
        # The off-path answer finally lands, far past every sweep.
        assembler.on_r2(0.2 + 5 * assembler.horizon, UPSTREAM, r2_payload())
        assembler.close()
        assert aggregate.joined_views == 1
        assert aggregate.off_path_r2 == 1
        assert aggregate.on_path_r2 == 0
        assert dict(aggregate.off_path_fan_in) == {UPSTREAM: {TARGET}}

    def test_answered_flow_is_evictable_again(self):
        assembler, aggregate = make_assembler()
        start_forwarder_flow(assembler)
        assembler.on_r2(0.3, UPSTREAM, r2_payload())
        # Once the R2 landed the pending guard no longer applies.
        assert assembler.sweep(0.3 + assembler.horizon) == 1
        assert assembler.live_flows == 0
        assert aggregate.off_path_r2 == 1

    def test_unanswered_flow_without_target_still_evicts(self):
        # The guard is narrow: a flow with no target binding (e.g. a
        # Q2 whose Q1 was never observed) must not leak forever.
        assembler, aggregate = make_assembler()
        assembler.on_query_served(0.0, QNAME)
        assert assembler.sweep(assembler.horizon) == 1
        assert assembler.live_flows == 0
        assert aggregate.q2_total == 1

    def test_probed_flow_without_q2_still_evicts(self):
        # Dead target: Q1 went out, nothing ever came back or was
        # served. Pending status requires the Q2 evidence that an
        # answer may still be in flight.
        assembler, aggregate = make_assembler()
        assembler.on_q1(0.0, QNAME, dst_ip=TARGET)
        assert assembler.sweep(assembler.horizon) == 1
        assert assembler.live_flows == 0

    def test_pending_flow_folds_off_path_at_close_without_r2(self):
        # If the answer never arrives at all, close() folds the counts
        # and the flow contributes no view — same as the batch join's
        # unanswered target.
        assembler, aggregate = make_assembler()
        start_forwarder_flow(assembler)
        assembler.sweep(0.2 + 10 * assembler.horizon)
        assembler.close()
        assert aggregate.joined_views == 0
        assert aggregate.q2_total == 1
