"""Golden streaming-vs-batch equivalence: the stream pipeline's core
guarantee.

For every (seed, year, fault profile, worker count) the streaming
campaign must render the full Tables II–X report byte-identically to
the batch campaign with the same sharding — including ``drop_captures``
runs that never retain a single raw packet.
"""

import dataclasses

import pytest

from repro.core import Campaign, CampaignConfig
from repro.core.shard import run_sharded

#: Coarse enough that one campaign runs in well under a second.
SCALE = 65536

CONFIG_2018 = CampaignConfig(year=2018, scale=SCALE, seed=3)
#: The subdomain-reuse regime (see test_shard_equivalence): clusters
#: cycle fast enough that evicted qnames resurface, the hardest case
#: for online flow eviction.
CONFIG_2013 = CampaignConfig(
    year=2013, scale=SCALE, seed=7, time_compression=64.0
)


def _stream(config, **overrides):
    return dataclasses.replace(config, mode="stream", **overrides)


@pytest.fixture(scope="module")
def batch_2018():
    return Campaign(CONFIG_2018).run()


@pytest.fixture(scope="module")
def batch_2013():
    return Campaign(CONFIG_2013).run()


class TestSerialEquivalence(object):
    def test_2018_report_byte_identical(self, batch_2018):
        streamed = Campaign(_stream(CONFIG_2018)).run()
        assert streamed.report() == batch_2018.report()

    def test_2013_reuse_regime_byte_identical(self, batch_2013):
        streamed = Campaign(_stream(CONFIG_2013)).run()
        assert streamed.report() == batch_2013.report()

    @pytest.mark.parametrize("seed", [0, 11])
    def test_other_seeds_byte_identical(self, seed):
        config = dataclasses.replace(CONFIG_2018, seed=seed)
        batch = Campaign(config).run()
        streamed = Campaign(_stream(config)).run()
        assert streamed.report() == batch.report()

    @pytest.mark.parametrize("profile", ["none", "bursty", "hostile"])
    def test_fault_profiles_byte_identical(self, profile):
        config = dataclasses.replace(CONFIG_2018, fault_profile=profile)
        batch = Campaign(config).run()
        streamed = Campaign(_stream(config)).run()
        assert streamed.report() == batch.report()

    def test_flow_set_matches_batch_in_retention_mode(self, batch_2018):
        # Default streaming retains captures, so follow-up consumers
        # (persistence, monitor snapshots) see the batch-identical join.
        streamed = Campaign(_stream(CONFIG_2018)).run()
        assert streamed.flow_set.views == batch_2018.flow_set.views
        assert len(streamed.query_log) == len(batch_2018.query_log)


class TestShardedEquivalence(object):
    @pytest.mark.parametrize("profile", ["none", "bursty", "hostile"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_stream_matches_batch_at_same_worker_count(self, profile, workers):
        config = dataclasses.replace(
            CONFIG_2018, fault_profile=profile, workers=workers
        )
        batch = run_sharded(config, parallelism="inline")
        streamed = run_sharded(_stream(config), parallelism="inline")
        assert streamed.report() == batch.report()

    def test_2013_sharded_drop_captures(self, ):
        config = dataclasses.replace(CONFIG_2013, workers=3)
        batch = run_sharded(config, parallelism="inline")
        streamed = run_sharded(
            _stream(config, drop_captures=True), parallelism="inline"
        )
        assert streamed.report() == batch.report()

    def test_merged_stream_stats_cover_all_shards(self):
        config = _stream(dataclasses.replace(CONFIG_2018, workers=4))
        result = run_sharded(config, parallelism="inline")
        serial = Campaign(_stream(CONFIG_2018)).run()
        assert result.stream_stats is not None
        assert result.stream_stats.r2_events == serial.stream_stats.r2_events
        assert result.stream_stats.q2_events == serial.stream_stats.q2_events


class TestDropCaptures(object):
    def test_tables_identical_with_nothing_retained(self, batch_2018):
        result = Campaign(_stream(CONFIG_2018, drop_captures=True)).run()
        assert result.report() == batch_2018.report()
        assert result.capture.r2_records == []
        assert result.flow_set.flows == {}
        assert result.flow_set.unjoinable == []
        assert result.query_log == []

    def test_requires_stream_mode(self):
        with pytest.raises(ValueError):
            CampaignConfig(drop_captures=True)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(mode="firehose")


class TestCheckpointResume(object):
    def test_aggregate_checkpoints_resume_byte_identical(self, tmp_path):
        config = _stream(
            dataclasses.replace(
                CONFIG_2018, fault_profile="hostile", workers=4
            ),
            drop_captures=True,
        )
        first = run_sharded(
            config, parallelism="inline", checkpoint_dir=tmp_path
        )
        resumed = run_sharded(
            config, parallelism="inline", checkpoint_dir=tmp_path, resume=True
        )
        assert resumed.report() == first.report()

    def test_drop_captures_checkpoints_stay_small(self, tmp_path):
        config = _stream(
            dataclasses.replace(CONFIG_2018, workers=2), drop_captures=True
        )
        run_sharded(config, parallelism="inline", checkpoint_dir=tmp_path)
        shard_files = sorted(tmp_path.glob("shard_*.pkl"))
        assert shard_files, "no shard checkpoints written"
        for path in shard_files:
            # Accumulator state only — kilobytes, not captures.
            assert path.stat().st_size < 64 * 1024


class TestStreamStats(object):
    def test_batch_result_has_no_stream_stats(self, batch_2018):
        assert batch_2018.stream_stats is None

    def test_stream_stats_match_scan_shape(self, batch_2018):
        result = Campaign(_stream(CONFIG_2018)).run()
        stats = result.stream_stats
        assert stats is not None
        assert stats.r2_events == batch_2018.flow_set.r2_count
        assert stats.q2_events == len(batch_2018.query_log)
        assert stats.flows_evicted <= stats.flows_opened
        assert 0 < stats.peak_live_flows <= stats.flows_opened

    def test_eviction_bounds_live_flows(self):
        # The whole point: peak live flows stays far below total flows.
        result = Campaign(_stream(CONFIG_2018)).run()
        stats = result.stream_stats
        assert stats.peak_live_flows < stats.flows_opened / 2

    def test_stats_absent_from_report_bytes(self, batch_2018):
        # summary()/report() must not mention streaming, or byte
        # identity with the batch path would be unsatisfiable.
        streamed = Campaign(_stream(CONFIG_2018)).run()
        assert "stream" not in streamed.summary()
        assert streamed.summary() == batch_2018.summary()
