"""FlowAssembler unit behavior: online join, eviction, folding."""

import pytest

from repro.dnslib.constants import QueryType
from repro.dnslib.message import make_query, make_response
from repro.dnslib.records import AData, ResourceRecord
from repro.dnslib.wire import encode_message
from repro.stream.aggregate import TableAggregate
from repro.stream.assembler import FlowAssembler

TRUTH = "10.9.9.9"
QNAME = "or000.0000001.ucfsealresearch.net"


def r2_payload(qname=QNAME, answer_ip=TRUTH, ra=True):
    query = make_query(qname, msg_id=7)
    answers = (
        [ResourceRecord(qname, QueryType.A, data=AData(answer_ip))]
        if answer_ip is not None else []
    )
    return encode_message(make_response(query, answers=answers, ra=ra))


def empty_question_payload():
    query = make_query(QNAME, msg_id=9)
    return encode_message(make_response(query, copy_question=False))


def make_assembler(**kwargs):
    aggregate = TableAggregate(TRUTH)
    kwargs.setdefault("response_window", 5.0)
    return FlowAssembler(aggregate, **kwargs), aggregate


class TestOnlineJoin(object):
    def test_answered_flow_folds_once_on_close(self):
        assembler, aggregate = make_assembler()
        assembler.on_q1(0.0, QNAME)
        assembler.on_query_served(0.1, QNAME)
        assembler.on_r2(0.2, "198.51.100.7", r2_payload())
        assembler.close()
        assert aggregate.joined_views == 1
        assert aggregate.correct == 1
        assert aggregate.q2_total == aggregate.r1_total == 1

    def test_last_r2_wins_like_batch_join(self):
        assembler, aggregate = make_assembler()
        assembler.on_q1(0.0, QNAME)
        assembler.on_r2(0.2, "198.51.100.7", r2_payload(answer_ip=TRUTH))
        assembler.on_r2(0.3, "198.51.100.7", r2_payload(answer_ip="6.6.6.6"))
        assembler.close()
        assert aggregate.joined_views == 1
        assert aggregate.correct == 0
        assert aggregate.incorrect == 1

    def test_empty_question_folds_immediately_as_unjoinable(self):
        assembler, aggregate = make_assembler()
        assembler.on_r2(0.1, "198.51.100.7", empty_question_payload())
        assert aggregate.unjoinable_total == 1
        assert assembler.live_flows == 0

    def test_formerr_reply_joins_the_empty_qname_flow(self):
        # The auth logs undecodable-question queries under qname "";
        # the sink maps a question-less reply send to the same key.
        assembler, aggregate = make_assembler()
        assembler.on_query_served(0.1, None)
        assembler.close()
        assert aggregate.q2_total == 1
        assert aggregate.joined_views == 0


class TestEviction(object):
    def test_settled_flow_evicted_after_horizon(self):
        assembler, aggregate = make_assembler(
            response_window=5.0, lateness=5.0
        )
        assembler.on_q1(0.0, QNAME)
        assembler.on_r2(0.2, "198.51.100.7", r2_payload())
        assert assembler.live_flows == 1
        assembler.on_q1(30.0, "or001.0000002.ucfsealresearch.net")
        assert assembler.live_flows == 1  # old one gone, new one live
        assert assembler.stats.flows_evicted == 1
        assert aggregate.joined_views == 1  # folded at eviction, not close

    def test_activity_within_horizon_blocks_eviction(self):
        assembler, _ = make_assembler(response_window=5.0, lateness=0.0)
        assembler.on_q1(0.0, QNAME)
        for now in (4.0, 8.0, 12.0):
            assembler.on_query_served(now, QNAME)
        assembler.sweep(16.9)  # last activity 12.0 + horizon 5.0 = 17.0
        assert assembler.live_flows == 1
        assembler.sweep(17.1)
        assert assembler.live_flows == 0

    def test_unanswered_eviction_keeps_counts_additive(self):
        # A qname evicted unanswered and later reused must contribute
        # the sum of both incarnations' Q2/R1 counts, like the batch
        # join over the full query log.
        assembler, aggregate = make_assembler(
            response_window=5.0, lateness=0.0
        )
        assembler.on_query_served(0.0, QNAME)
        assembler.sweep(100.0)
        assembler.on_query_served(200.0, QNAME)
        assembler.close()
        assert aggregate.q2_total == 2
        assert aggregate.joined_views == 0

    def test_peak_live_flows_tracks_high_water_mark(self):
        assembler, _ = make_assembler()
        for index in range(5):
            assembler.on_q1(0.0, f"or{index:03d}.0000001.ucfsealresearch.net")
        assembler.close()
        assert assembler.stats.peak_live_flows == 5
        assert assembler.live_flows == 0

    def test_close_is_idempotent_for_counts(self):
        assembler, aggregate = make_assembler()
        assembler.on_q1(0.0, QNAME)
        assembler.on_r2(0.2, "198.51.100.7", r2_payload())
        assembler.close()
        assembler.close()
        assert aggregate.joined_views == 1


class TestValidation(object):
    def test_bad_parameters_rejected(self):
        aggregate = TableAggregate(TRUTH)
        with pytest.raises(ValueError):
            FlowAssembler(aggregate, response_window=0.0)
        with pytest.raises(ValueError):
            FlowAssembler(aggregate, response_window=5.0, lateness=-1.0)
        with pytest.raises(ValueError):
            FlowAssembler(aggregate, response_window=5.0, sweep_interval=0.0)
