"""Seeded property test: eviction never races a live response.

The assembler's safety claim (DESIGN.md §7): a flow that will still
receive an R2 within ``response_window`` of its last activity is never
evicted first. Each example derives a randomized schedule — staggered
Q1s, retransmissions, in-window and badly late responses, fault-style
duplication (≤50 ms extra copies) and reordering jitter — replays it
through a :class:`FlowAssembler` that records every eviction, and then
checks the recorded evictions against the ground-truth schedule. It
also pins the end state to the offline batch join over the same
events, so "nothing dropped" is verified by equivalence too, not just
by the eviction log.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnslib.constants import QueryType
from repro.dnslib.message import make_query, make_response
from repro.dnslib.records import AData, ResourceRecord
from repro.dnslib.wire import encode_message
from repro.prober.capture import R2Record, join_flows
from repro.stream.aggregate import TableAggregate
from repro.stream.assembler import FlowAssembler

TRUTH = "10.9.9.9"
RESPONSE_WINDOW = 5.0
#: Same slack the campaign pipeline uses (lateness defaults to the
#: response window), so the property tests the shipped configuration.
HORIZON = RESPONSE_WINDOW * 2
#: faults.py duplicates a delivery 1-50 ms after the original.
DUPLICATE_EXTRA = 0.05


class RecordingAssembler(FlowAssembler):
    """A FlowAssembler that logs (qname, watermark) for every eviction."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.evictions = []

    def sweep(self, watermark):
        before = set(self._flows)
        evicted = super().sweep(watermark)
        for qname in before - set(self._flows):
            self.evictions.append((qname, watermark))
        return evicted


def _payload(qname, answer_ip):
    query = make_query(qname, msg_id=1)
    answers = (
        [ResourceRecord(qname, QueryType.A, data=AData(answer_ip))]
        if answer_ip else []
    )
    return encode_message(make_response(query, answers=answers, ra=True))


def _schedule(seed):
    """A randomized, fault-shaped event timeline for ~30 flows."""
    rng = random.Random(seed)
    events = []  # (time, kind, qname, payload)
    activities = {}  # qname -> sorted activity times (Q1/Q2 sends)
    r2_times = {}  # qname -> list of delivery times
    for index in range(rng.randrange(10, 35)):
        qname = f"or{index % 1000:03d}.{index:07d}.ucfsealresearch.net"
        q1 = rng.uniform(0.0, 60.0)
        touches = [q1]
        events.append((q1, "q1", qname, None))
        if rng.random() < 0.3:  # retransmission, ZDNS-style
            retry = q1 + 1.5
            touches.append(retry)
            events.append((retry, "q1", qname, None))
        if rng.random() < 0.5:  # the auth served this probe's Q2
            q2 = q1 + rng.uniform(0.01, 0.5)
            touches.append(q2)
            events.append((q2, "q2", qname, None))
        answered = rng.random() < 0.7
        if answered:
            if rng.random() < 0.8:  # within the prober's window
                delay = rng.uniform(0.01, RESPONSE_WINDOW)
            else:  # badly late: past the full eviction horizon
                delay = rng.uniform(HORIZON + 1.0, HORIZON + 30.0)
            answer = rng.choice([TRUTH, "203.0.113.9", None])
            base = max(touches) + delay + rng.uniform(0.0, 0.2)  # jitter
            deliveries = [base]
            if rng.random() < 0.2:  # fault-injected duplicate copy
                deliveries.append(base + rng.uniform(0.001, DUPLICATE_EXTRA))
            payload = _payload(qname, answer)
            for at in deliveries:
                events.append((at, "r2", qname, payload))
            r2_times[qname] = deliveries
        activities[qname] = sorted(touches)
    events.sort(key=lambda event: (event[0], event[1]))
    return events, activities, r2_times


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=40, deadline=None)
def test_eviction_never_drops_a_flow_awaiting_an_in_window_r2(seed):
    events, activities, r2_times = _schedule(seed)
    assembler = RecordingAssembler(
        TableAggregate(TRUTH), response_window=RESPONSE_WINDOW
    )
    records = []
    for at, kind, qname, payload in events:
        if kind == "q1":
            assembler.on_q1(at, qname)
        elif kind == "q2":
            assembler.on_query_served(at, qname)
        else:
            assembler.on_r2(at, "198.51.100.7", payload)
            records.append(R2Record(at, "198.51.100.7", payload))
    aggregate = assembler.close()

    # Safety: no eviction may precede an R2 the flow was still owed.
    for qname, watermark in assembler.evictions:
        pre_eviction = [t for t in activities[qname] if t < watermark]
        last_activity = max(pre_eviction) if pre_eviction else None
        for delivery in r2_times.get(qname, []):
            if delivery >= watermark and last_activity is not None:
                assert delivery > last_activity + RESPONSE_WINDOW, (
                    f"{qname} evicted at {watermark} but an R2 due at "
                    f"{delivery} was within the response window of its "
                    f"last activity {last_activity}"
                )

    # Equivalence: the folded state matches the offline batch join.
    flow_set = join_flows(records)
    expected = TableAggregate(TRUTH)
    for view in flow_set.views:
        expected.add_view(view)
    for view in flow_set.unjoinable:
        expected.add_unjoinable(view)
    q2_count = sum(1 for _, kind, _, _ in events if kind == "q2")
    expected.add_counts(q2_count, q2_count)
    assert aggregate == expected
