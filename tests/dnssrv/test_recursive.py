"""End-to-end recursive resolution tests (Fig 1 of the paper)."""

from repro.dnslib.constants import QueryType, Rcode
from repro.dnslib.message import make_query
from repro.dnslib.wire import decode_message, encode_message
from repro.dnslib.zone import parse_master_file
from repro.dnssrv.hierarchy import build_hierarchy
from repro.dnssrv.recursive import RecursiveResolver
from repro.netsim.network import Network
from repro.netsim.packet import Datagram

ZONE_TEXT = """\
$ORIGIN ucfsealresearch.net.
$TTL 300
@ IN SOA ns1 hostmaster 1 2 3 4 5
@ IN NS ns1
ns1 IN A 45.76.1.10
or000.0000000 IN A 45.76.1.10
alias IN CNAME or000.0000000
"""

RESOLVER_IP = "93.184.10.1"
CLIENT_IP = "8.8.4.100"


def build_world(record_traces=False):
    network = Network()
    hierarchy = build_hierarchy(network)
    hierarchy.auth.load_zone(parse_master_file(ZONE_TEXT))
    resolver = RecursiveResolver(
        RESOLVER_IP, hierarchy.root_servers, record_traces=record_traces
    )
    resolver.attach(network)
    return network, hierarchy, resolver


def ask(network, qname, msg_id=1, qtype=QueryType.A):
    responses = []
    if not network.is_bound(CLIENT_IP, 5555):
        network.bind(CLIENT_IP, 5555, lambda dg, net: responses.append(dg))
    query = make_query(qname, qtype=qtype, msg_id=msg_id)
    network.send(Datagram(CLIENT_IP, 5555, RESOLVER_IP, 53, encode_message(query)))
    network.run()
    return [decode_message(dg.payload) for dg in responses]


class TestRecursiveResolution:
    def test_full_chain_resolves(self):
        network, hierarchy, resolver = build_world()
        (response,) = ask(network, "or000.0000000.ucfsealresearch.net", msg_id=77)
        assert response.header.msg_id == 77
        assert response.header.flags.ra
        assert not response.header.flags.aa
        assert response.rcode == Rcode.NOERROR
        assert response.first_a_record().data.address == "45.76.1.10"
        # Each tier of the hierarchy was consulted exactly once.
        assert hierarchy.root.queries_served == 1
        assert hierarchy.tld.queries_served == 1
        assert len(hierarchy.auth.query_log) == 1
        assert hierarchy.auth.query_log[0].src_ip == RESOLVER_IP

    def test_trace_matches_fig1(self):
        network, hierarchy, resolver = build_world(record_traces=True)
        ask(network, "or000.0000000.ucfsealresearch.net")
        (trace,) = resolver.traces
        assert trace.outcome == "answered"
        assert [step for step in trace.steps] == [
            (hierarchy.root.ip, "referral"),
            (hierarchy.tld.ip, "referral"),
            (hierarchy.auth.ip, "answer"),
        ]

    def test_nxdomain_propagates(self):
        network, _, _ = build_world()
        (response,) = ask(network, "missing.ucfsealresearch.net")
        assert response.rcode == Rcode.NXDOMAIN
        assert response.header.flags.ra

    def test_cache_short_circuits_second_query(self):
        network, hierarchy, resolver = build_world()
        ask(network, "or000.0000000.ucfsealresearch.net", msg_id=1)
        ask(network, "or000.0000000.ucfsealresearch.net", msg_id=2)
        assert hierarchy.root.queries_served == 1  # only the first walk
        assert resolver.stats.cache_answers == 1

    def test_unique_subdomains_defeat_cache(self):
        # The paper's core methodology: fresh qnames can never be cache hits.
        network, hierarchy, resolver = build_world()
        ask(network, "or000.0000000.ucfsealresearch.net", msg_id=1)
        ask(network, "alias.ucfsealresearch.net", msg_id=2)
        assert resolver.stats.cache_answers == 0

    def test_cname_chain_resolves(self):
        network, _, resolver = build_world()
        (response,) = ask(network, "alias.ucfsealresearch.net")
        assert response.rcode == Rcode.NOERROR
        assert response.first_a_record().data.address == "45.76.1.10"

    def test_unreachable_root_servfails(self):
        network = Network()
        resolver = RecursiveResolver(RESOLVER_IP, ["203.0.113.99"], timeout=0.5)
        resolver.attach(network)
        (response,) = ask(network, "x.ucfsealresearch.net")
        assert response.rcode == Rcode.SERVFAIL
        assert resolver.stats.servfail == 1

    def test_fallback_to_second_root(self):
        network = Network()
        hierarchy = build_hierarchy(network)
        hierarchy.auth.load_zone(parse_master_file(ZONE_TEXT))
        resolver = RecursiveResolver(
            RESOLVER_IP, ["203.0.113.99", hierarchy.root.ip], timeout=0.5
        )
        resolver.attach(network)
        (response,) = ask(network, "or000.0000000.ucfsealresearch.net")
        assert response.rcode == Rcode.NOERROR

    def test_stats_counters(self):
        network, _, resolver = build_world()
        ask(network, "or000.0000000.ucfsealresearch.net")
        assert resolver.stats.client_queries == 1
        assert resolver.stats.upstream_queries == 3  # root, tld, auth
        assert resolver.stats.answered == 1

    def test_requires_root_servers(self):
        import pytest

        with pytest.raises(ValueError):
            RecursiveResolver(RESOLVER_IP, [])

    def test_malformed_client_query_ignored(self):
        network, _, resolver = build_world()
        network.send(Datagram(CLIENT_IP, 5555, RESOLVER_IP, 53, b"junk"))
        network.run()
        assert resolver.stats.client_queries == 0
