"""Property-based tests for :mod:`repro.dnssrv.ratelimit`.

Pins the token-bucket invariants the defense matrix leans on:

* tokens never exceed ``burst`` regardless of call pattern;
* a clock that jumps backwards never mints tokens (the PR 5
  regression), so total admissions are bounded by the forward progress
  of the clock;
* drop decisions are a pure function of each client's own event
  subsequence — interleaving traffic from other clients cannot change
  them (this is what makes scheduler-ordered replays deterministic);
* the bounded (idle-evicting) limiter is *lossless*: on any
  monotone clock its decisions and exact counters match an unbounded
  twin, because the idle horizon is clamped to at least the full
  refill time ``burst / rate``.

The monotone-clock restriction on the eviction property mirrors the
simulator: the event-driven scheduler only moves time forward; the
adversarial-clock properties above cover hostile inputs.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnssrv.ratelimit import ClientQueryQuota, ResponseRateLimiter

#: A small IP pool keeps collisions (shared buckets) likely.
_IPS = st.sampled_from([f"198.51.100.{i}" for i in range(1, 6)])

#: Arbitrary — including backwards — clock readings.
_TIMES = st.floats(
    min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False
)

_EVENTS = st.lists(st.tuples(_IPS, _TIMES), min_size=1, max_size=80)

_RATES = st.floats(min_value=0.1, max_value=50.0)
_BURSTS = st.floats(min_value=1.0, max_value=50.0)


@settings(max_examples=200, deadline=None)
@given(events=_EVENTS, rate=_RATES, burst=_BURSTS)
def test_tokens_never_exceed_burst(events, rate, burst):
    limiter = ResponseRateLimiter(rate_per_second=rate, burst=burst)
    for ip, now in events:
        limiter.allow(ip, now)
        for bucket in limiter._buckets.values():
            assert bucket.tokens <= burst + 1e-9


@settings(max_examples=200, deadline=None)
@given(events=_EVENTS, rate=_RATES, burst=_BURSTS)
def test_clock_regressions_never_mint_tokens(events, rate, burst):
    # Refill is driven by the per-bucket high-water mark, so the total
    # number of admissions for one client is bounded by the initial
    # burst plus rate x (max clock seen - first clock seen) — a bound a
    # backwards-jumping clock cannot inflate.
    limiter = ResponseRateLimiter(rate_per_second=rate, burst=burst)
    first_seen = {}
    max_seen = {}
    allowed = {}
    for ip, now in events:
        first_seen.setdefault(ip, now)
        max_seen[ip] = max(max_seen.get(ip, now), now)
        if limiter.allow(ip, now):
            allowed[ip] = allowed.get(ip, 0) + 1
    for ip, count in allowed.items():
        budget = burst + rate * (max_seen[ip] - first_seen[ip])
        assert count <= math.floor(budget + 1e-6) + 1


@settings(max_examples=200, deadline=None)
@given(events=_EVENTS, rate=_RATES, burst=_BURSTS)
def test_decisions_independent_of_other_clients(events, rate, burst):
    interleaved = ResponseRateLimiter(rate_per_second=rate, burst=burst)
    full_trace = [
        (ip, now, interleaved.allow(ip, now)) for ip, now in events
    ]
    for target in {ip for ip, _ in events}:
        solo = ResponseRateLimiter(rate_per_second=rate, burst=burst)
        for ip, now, decision in full_trace:
            if ip == target:
                assert solo.allow(ip, now) == decision


@settings(max_examples=200, deadline=None)
@given(events=_EVENTS, rate=_RATES, burst=_BURSTS)
def test_equal_timestamp_decisions_are_order_deterministic(
    events, rate, burst
):
    # Flatten every event onto one timestamp: replaying the same
    # sequence must reproduce the same decision vector, byte for byte.
    flat = [(ip, 10.0) for ip, _ in events]
    first = ResponseRateLimiter(rate_per_second=rate, burst=burst)
    second = ResponseRateLimiter(rate_per_second=rate, burst=burst)
    assert [first.allow(ip, now) for ip, now in flat] == [
        second.allow(ip, now) for ip, now in flat
    ]


@settings(max_examples=200, deadline=None)
@given(
    events=_EVENTS,
    rate=_RATES,
    burst=_BURSTS,
    horizon=st.floats(min_value=0.1, max_value=30.0),
)
def test_bounded_limiter_is_lossless_on_monotone_clock(
    events, rate, burst, horizon
):
    ordered = sorted(events, key=lambda event: event[1])
    bounded = ResponseRateLimiter(
        rate_per_second=rate, burst=burst, idle_horizon=horizon
    )
    unbounded = ResponseRateLimiter(rate_per_second=rate, burst=burst)
    for ip, now in ordered:
        assert bounded.allow(ip, now) == unbounded.allow(ip, now)
    assert bounded.allowed == unbounded.allowed
    assert bounded.dropped == unbounded.dropped
    assert len(bounded) <= len(unbounded)


@settings(max_examples=100, deadline=None)
@given(events=_EVENTS, rate=_RATES, burst=_BURSTS)
def test_quota_counters_are_exact(events, rate, burst):
    quota = ClientQueryQuota(queries_per_second=rate, burst=burst)
    decisions = [quota.allow(ip, now) for ip, now in events]
    assert quota.allowed == sum(decisions)
    assert quota.refused == len(decisions) - sum(decisions)
    assert quota.allowed + quota.dropped == len(events)
