"""Response rate limiting tests."""

import pytest

from repro.dnssrv.ratelimit import ResponseRateLimiter


class TestTokenBucket:
    def test_burst_then_block(self):
        limiter = ResponseRateLimiter(rate_per_second=1.0, burst=3.0)
        results = [limiter.allow("9.9.9.9", 0.0) for _ in range(5)]
        assert results == [True, True, True, False, False]
        assert limiter.dropped == 2

    def test_refill_over_time(self):
        limiter = ResponseRateLimiter(rate_per_second=2.0, burst=2.0)
        assert limiter.allow("9.9.9.9", 0.0)
        assert limiter.allow("9.9.9.9", 0.0)
        assert not limiter.allow("9.9.9.9", 0.0)
        # 1 second at 2 tokens/s refills two responses.
        assert limiter.allow("9.9.9.9", 1.0)
        assert limiter.allow("9.9.9.9", 1.0)
        assert not limiter.allow("9.9.9.9", 1.0)

    def test_per_client_isolation(self):
        limiter = ResponseRateLimiter(rate_per_second=1.0, burst=1.0)
        assert limiter.allow("1.1.1.1", 0.0)
        assert limiter.allow("2.2.2.2", 0.0)  # separate bucket
        assert not limiter.allow("1.1.1.1", 0.0)

    def test_tokens_capped_at_burst(self):
        limiter = ResponseRateLimiter(rate_per_second=100.0, burst=2.0)
        limiter.allow("9.9.9.9", 0.0)
        # A long quiet period cannot bank more than the burst.
        assert limiter.allow("9.9.9.9", 100.0)
        assert limiter.allow("9.9.9.9", 100.0)
        assert not limiter.allow("9.9.9.9", 100.0)

    def test_drop_rate(self):
        limiter = ResponseRateLimiter(rate_per_second=1.0, burst=1.0)
        limiter.allow("9.9.9.9", 0.0)
        limiter.allow("9.9.9.9", 0.0)
        assert limiter.drop_rate == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            ResponseRateLimiter(rate_per_second=0)
        with pytest.raises(ValueError):
            ResponseRateLimiter(burst=-1)


class TestRrlOnResolver:
    def test_rrl_caps_amplification(self):
        from repro.amplification import AmplificationAttack, build_rich_zone
        from repro.dnssrv.hierarchy import build_hierarchy
        from repro.dnssrv.recursive import RecursiveResolver
        from repro.netsim.network import Network

        def attack(limited: bool):
            network = Network(seed=2)
            hierarchy = build_hierarchy(
                network, sld="amp.example", auth_ip="198.51.100.53"
            )
            hierarchy.auth.load_zone(build_rich_zone("amp.example"))
            limiter = (
                ResponseRateLimiter(rate_per_second=1.0, burst=2.0)
                if limited
                else None
            )
            ips = []
            for index in range(3):
                ip = f"100.0.0.{index + 1}"
                RecursiveResolver(
                    ip, hierarchy.root_servers, rate_limiter=limiter
                ).attach(network)
                ips.append(ip)
            return AmplificationAttack(
                network, "6.6.6.6", "203.0.113.9", ips, "amp.example"
            ).launch(rounds=20)

        unlimited = attack(limited=False)
        limited = attack(limited=True)
        assert unlimited.victim_packets == unlimited.queries_sent
        # RRL suppresses most of the reflected flood.
        assert limited.victim_packets < 0.35 * unlimited.victim_packets
        assert limited.victim_bytes < 0.35 * unlimited.victim_bytes


class TestIdleEviction:
    def test_bucket_table_stays_bounded(self):
        limiter = ResponseRateLimiter(
            rate_per_second=10.0, burst=5.0, idle_horizon=2.0
        )
        # A slow scan over many one-shot clients: each bucket goes idle
        # long before the sweep, so the table never holds the full
        # client population.
        for index in range(500):
            limiter.allow(f"10.0.{index // 250}.{index % 250}", index * 1.0)
        assert len(limiter) < 10
        assert limiter.evicted > 400
        assert limiter.allowed == 500

    def test_horizon_clamped_to_full_refill(self):
        # A horizon shorter than burst/rate would evict buckets that
        # still owe drops; the ctor clamps it so eviction is lossless.
        limiter = ResponseRateLimiter(
            rate_per_second=1.0, burst=10.0, idle_horizon=1.0
        )
        assert limiter.idle_horizon == 10.0

    def test_eviction_matches_unbounded_counters(self):
        bounded = ResponseRateLimiter(
            rate_per_second=1.0, burst=2.0, idle_horizon=3.0
        )
        unbounded = ResponseRateLimiter(rate_per_second=1.0, burst=2.0)
        trace = [
            ("1.1.1.1", t * 0.5) for t in range(40)
        ] + [("2.2.2.2", 20.0 + t) for t in range(40)]
        for ip, now in trace:
            assert bounded.allow(ip, now) == unbounded.allow(ip, now)
        assert (bounded.allowed, bounded.dropped) == (
            unbounded.allowed,
            unbounded.dropped,
        )

    def test_unbounded_by_default(self):
        limiter = ResponseRateLimiter(rate_per_second=1.0, burst=1.0)
        for index in range(100):
            limiter.allow(f"10.1.0.{index}", index * 100.0)
        assert len(limiter) == 100
        assert limiter.evicted == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ResponseRateLimiter(idle_horizon=0.0)
        with pytest.raises(ValueError):
            ResponseRateLimiter(idle_horizon=-5.0)


class TestClockRegression:
    def test_backwards_clock_mints_no_free_tokens(self):
        limiter = ResponseRateLimiter(rate_per_second=1.0, burst=2.0)
        # Drain the burst at t=10.
        assert limiter.allow("9.9.9.9", 10.0)
        assert limiter.allow("9.9.9.9", 10.0)
        assert not limiter.allow("9.9.9.9", 10.0)
        # The clock jumps backwards (reordered events, a resync): the
        # refill watermark must not move back with it...
        assert not limiter.allow("9.9.9.9", 5.0)
        # ...or returning to the original time would re-credit the
        # 10s-5s "elapsed" interval as free tokens.
        assert not limiter.allow("9.9.9.9", 10.0)
        # Genuine forward progress still refills from the watermark.
        assert limiter.allow("9.9.9.9", 11.0)

    def test_regression_then_partial_recovery_charges_nothing(self):
        limiter = ResponseRateLimiter(rate_per_second=2.0, burst=1.0)
        assert limiter.allow("9.9.9.9", 100.0)
        assert not limiter.allow("9.9.9.9", 0.0)
        # Time seen so far peaked at 100; 99.9 is still the past.
        assert not limiter.allow("9.9.9.9", 99.9)
        assert limiter.allow("9.9.9.9", 100.5)
