"""Hierarchy assembly tests."""

import pytest

from repro.dnslib.message import make_query
from repro.dnssrv.hierarchy import (
    AUTH_IP,
    MEASUREMENT_SLD,
    ROOT_IP,
    TLD_IP,
    build_hierarchy,
)
from repro.netsim.network import Network


class TestBuildHierarchy:
    def test_default_addresses(self):
        network = Network()
        hierarchy = build_hierarchy(network)
        assert hierarchy.root.ip == ROOT_IP
        assert hierarchy.tld.ip == TLD_IP
        assert hierarchy.auth.ip == AUTH_IP
        assert hierarchy.sld == MEASUREMENT_SLD
        assert hierarchy.root_servers == [ROOT_IP]

    def test_all_servers_bound(self):
        network = Network()
        hierarchy = build_hierarchy(network)
        for ip in (hierarchy.root.ip, hierarchy.tld.ip, hierarchy.auth.ip):
            assert network.is_bound(ip, 53)

    def test_delegation_chain(self):
        network = Network()
        hierarchy = build_hierarchy(network)
        root_referral = hierarchy.root.respond(
            make_query("x.ucfsealresearch.net")
        )
        assert root_referral.additionals[0].data.address == hierarchy.tld.ip
        tld_referral = hierarchy.tld.respond(make_query("x.ucfsealresearch.net"))
        assert tld_referral.additionals[0].data.address == hierarchy.auth.ip

    def test_custom_sld(self):
        network = Network()
        hierarchy = build_hierarchy(network, sld="probe.example")
        assert hierarchy.sld == "probe.example"
        assert hierarchy.tld.zone == "example"

    def test_sld_must_have_tld(self):
        network = Network()
        with pytest.raises(ValueError):
            build_hierarchy(network, sld="bare")
