"""Unit tests for the resolver defense knobs (PR 7 substrate).

Covers per-client query quotas, bounded negative caching, pending-table
load shedding, the glueless-NS chase with its fan-out cap, and RRL on
the authoritative/delegation serving paths.
"""

import pytest

from repro.dnslib.constants import QueryType, Rcode
from repro.dnslib.message import make_query, make_response
from repro.dnslib.records import NsData, ResourceRecord
from repro.dnslib.wire import DnsWireError, decode_message, encode_message
from repro.dnslib.zone import Zone, parse_master_file
from repro.dnssrv.auth import AuthoritativeServer
from repro.dnssrv.delegation import Delegation, DelegationServer
from repro.dnssrv.hierarchy import build_hierarchy
from repro.dnssrv.ratelimit import ClientQueryQuota, ResponseRateLimiter
from repro.dnssrv.recursive import RecursiveResolver
from repro.netsim.network import Network
from repro.netsim.packet import Datagram

ZONE_TEXT = """\
$ORIGIN ucfsealresearch.net.
$TTL 300
@ IN SOA ns1 hostmaster 1 2 3 4 5
@ IN NS ns1
ns1 IN A 45.76.1.10
or000.0000000 IN A 45.76.1.10
"""

RESOLVER_IP = "93.184.10.1"
CLIENT_IP = "8.8.4.100"


def build_world(**resolver_kwargs):
    network = Network()
    hierarchy = build_hierarchy(network)
    hierarchy.auth.load_zone(parse_master_file(ZONE_TEXT))
    resolver = RecursiveResolver(
        RESOLVER_IP, hierarchy.root_servers, **resolver_kwargs
    )
    resolver.attach(network)
    return network, hierarchy, resolver


def collect_responses(network):
    responses = []
    if not network.is_bound(CLIENT_IP, 5555):
        network.bind(
            CLIENT_IP, 5555,
            lambda dg, net: responses.append(decode_message(dg.payload)),
        )
    return responses


def send_query(network, qname, msg_id=1):
    query = make_query(qname, msg_id=msg_id)
    network.send(
        Datagram(CLIENT_IP, 5555, RESOLVER_IP, 53, encode_message(query))
    )


class TestClientQueryQuota:
    def test_over_budget_queries_refused(self):
        network, _, resolver = build_world(
            query_quota=ClientQueryQuota(queries_per_second=1.0, burst=2.0)
        )
        responses = collect_responses(network)
        for index in range(5):
            send_query(
                network, f"or000.0000000.ucfsealresearch.net", msg_id=index
            )
        network.run()
        refused = [r for r in responses if r.rcode == Rcode.REFUSED]
        assert len(refused) == 3
        assert resolver.stats.quota_refused == 3
        assert resolver.query_quota.refused == 3

    def test_within_budget_untouched(self):
        network, _, resolver = build_world(
            query_quota=ClientQueryQuota(queries_per_second=5.0, burst=10.0)
        )
        responses = collect_responses(network)
        send_query(network, "or000.0000000.ucfsealresearch.net")
        network.run()
        assert resolver.stats.quota_refused == 0
        assert responses[0].rcode == Rcode.NOERROR


class TestNegativeCache:
    def test_second_nxdomain_served_from_cache(self):
        network, hierarchy, resolver = build_world(negative_ttl=300.0)
        responses = collect_responses(network)
        send_query(network, "missing.ucfsealresearch.net", msg_id=1)
        network.run()
        walks_after_first = hierarchy.root.queries_served
        send_query(network, "missing.ucfsealresearch.net", msg_id=2)
        network.run()
        assert hierarchy.root.queries_served == walks_after_first
        assert resolver.stats.negative_hits == 1
        assert [r.rcode for r in responses] == [Rcode.NXDOMAIN, Rcode.NXDOMAIN]

    def test_disabled_by_default(self):
        network, hierarchy, resolver = build_world()
        collect_responses(network)
        send_query(network, "missing.ucfsealresearch.net", msg_id=1)
        network.run()
        send_query(network, "missing.ucfsealresearch.net", msg_id=2)
        network.run()
        assert resolver.stats.negative_hits == 0
        assert hierarchy.root.queries_served == 2

    def test_store_is_bounded(self):
        network, _, resolver = build_world(
            negative_ttl=300.0, max_negative_entries=2
        )
        collect_responses(network)
        for index in range(4):
            send_query(
                network, f"missing{index}.ucfsealresearch.net", msg_id=index
            )
            network.run()
        assert len(resolver._negative) <= 2

    def test_rejects_negative_ttl(self):
        with pytest.raises(ValueError):
            RecursiveResolver(RESOLVER_IP, ["198.41.0.4"], negative_ttl=-1.0)


class TestLoadShedding:
    def test_pending_bound_sheds_with_servfail(self):
        network, _, resolver = build_world(max_pending=1)
        responses = collect_responses(network)
        # Three concurrent resolutions for distinct (uncached) names:
        # only one fits the pending table; the rest shed immediately.
        for index in range(3):
            send_query(
                network, f"fresh{index}.ucfsealresearch.net", msg_id=index
            )
        network.run()
        assert resolver.stats.load_shed == 2
        servfails = [r for r in responses if r.rcode == Rcode.SERVFAIL]
        assert len(servfails) == 2

    def test_unbounded_by_default(self):
        network, _, resolver = build_world()
        collect_responses(network)
        for index in range(3):
            send_query(
                network, f"fresh{index}.ucfsealresearch.net", msg_id=index
            )
        network.run()
        assert resolver.stats.load_shed == 0

    def test_rejects_nonpositive_bound(self):
        with pytest.raises(ValueError):
            RecursiveResolver(RESOLVER_IP, ["198.41.0.4"], max_pending=0)


class _GluelessReferrer:
    """Answers every query with glueless NS referrals (NXNS shape)."""

    def __init__(self, ip, ns_names):
        self.ip = ip
        self.ns_names = ns_names
        self.queries_served = 0

    def attach(self, network):
        network.bind(self.ip, 53, self.handle)

    def handle(self, datagram, network):
        try:
            query = decode_message(datagram.payload)
        except DnsWireError:
            return
        self.queries_served += 1
        authorities = [
            ResourceRecord(
                query.questions[0].qname, QueryType.NS, ttl=60,
                data=NsData(name),
            )
            for name in self.ns_names
        ]
        network.send(
            datagram.reply(
                encode_message(
                    make_response(
                        query, authorities=authorities, aa=True, ra=False
                    )
                )
            )
        )


def build_glueless_world(ns_names, **resolver_kwargs):
    """A zone cut whose referral carries NS names but no glue.

    ``glueless.net`` is delegated (with glue) to a referrer that
    answers only with glueless NS records; the *content* for the zone
    lives on the measurement auth server, which is also where the NS
    name ``ns1.ucfsealresearch.net`` resolves to — so a resolver that
    chases the glueless name ends up at a server that can answer.
    """
    network = Network()
    hierarchy = build_hierarchy(network)
    hierarchy.auth.load_zone(parse_master_file(ZONE_TEXT))
    content = Zone("glueless.net")
    content.add_a("www.glueless.net", "198.51.100.77", ttl=300)
    hierarchy.auth.load_zone(content)
    referrer = _GluelessReferrer("203.0.113.50", ns_names)
    referrer.attach(network)
    hierarchy.tld.add_delegation(
        Delegation("glueless.net", (("ns1.glueless.net", referrer.ip),))
    )
    resolver = RecursiveResolver(
        RESOLVER_IP, hierarchy.root_servers, **resolver_kwargs
    )
    resolver.attach(network)
    return network, hierarchy, resolver, referrer


class TestGluelessChase:
    def test_disabled_by_default_yields_nodata(self):
        # The historical behavior: a glue-free referral is a dead end.
        network, _, resolver, _ = build_glueless_world(
            ["ns1.ucfsealresearch.net"]
        )
        responses = collect_responses(network)
        send_query(network, "www.glueless.net")
        network.run()
        assert responses[0].rcode == Rcode.NOERROR
        assert not responses[0].answers
        assert resolver.stats.glueless_launched == 0

    def test_chase_resolves_ns_then_answers(self):
        network, _, resolver, _ = build_glueless_world(
            ["ns1.ucfsealresearch.net"], max_glueless=4
        )
        responses = collect_responses(network)
        send_query(network, "www.glueless.net")
        network.run()
        assert responses[0].rcode == Rcode.NOERROR
        assert responses[0].first_a_record().data.address == "198.51.100.77"
        assert resolver.stats.glueless_launched == 1
        assert resolver.stats.glueless_capped == 0

    def test_fanout_capped(self):
        ns_names = [
            f"ns{i}.nowhere.ucfsealresearch.net" for i in range(6)
        ] + ["ns1.ucfsealresearch.net"]
        network, _, resolver, _ = build_glueless_world(
            ns_names, max_glueless=2
        )
        collect_responses(network)
        send_query(network, "www.glueless.net")
        network.run()
        assert resolver.stats.glueless_launched == 2
        assert resolver.stats.glueless_capped == 5

    def test_all_children_fail_servfails(self):
        network, _, resolver, _ = build_glueless_world(
            ["ns1.missing.ucfsealresearch.net"], max_glueless=4
        )
        responses = collect_responses(network)
        send_query(network, "www.glueless.net")
        network.run()
        assert responses[0].rcode == Rcode.SERVFAIL
        assert resolver.stats.glueless_launched == 1

    def test_rejects_negative_cap(self):
        with pytest.raises(ValueError):
            RecursiveResolver(RESOLVER_IP, ["198.41.0.4"], max_glueless=-1)


class TestAuthRateLimiter:
    def _serve(self, limiter, queries=5):
        network = Network()
        auth = AuthoritativeServer("45.76.1.10", rate_limiter=limiter)
        auth.load_zone(parse_master_file(ZONE_TEXT))
        auth.attach(network)
        received = []
        network.bind(CLIENT_IP, 5555, lambda dg, net: received.append(dg))
        for index in range(queries):
            query = make_query(
                "or000.0000000.ucfsealresearch.net", msg_id=index
            )
            network.send(
                Datagram(
                    CLIENT_IP, 5555, auth.ip, 53, encode_message(query)
                )
            )
        network.run()
        return auth, received

    def test_responses_suppressed_past_burst(self):
        limiter = ResponseRateLimiter(rate_per_second=1.0, burst=2.0)
        auth, received = self._serve(limiter, queries=5)
        assert len(received) == 2
        assert limiter.dropped == 3
        # Served and logged regardless: RRL suppresses the response,
        # not the work (BIND semantics).
        assert auth.queries_served == 5
        assert len(auth.query_log) == 5

    def test_fast_path_also_limited(self):
        # The single-A template fast path must consult the limiter too:
        # it still reports "served" so the slow path never double-counts.
        limiter = ResponseRateLimiter(rate_per_second=1.0, burst=1.0)
        auth, received = self._serve(limiter, queries=3)
        assert len(received) == 1
        assert auth.queries_served == 3

    def test_no_limiter_answers_everything(self):
        auth, received = self._serve(None, queries=5)
        assert len(received) == 5


class TestDelegationRateLimiter:
    def test_referrals_suppressed_past_burst(self):
        network = Network()
        limiter = ResponseRateLimiter(rate_per_second=1.0, burst=1.0)
        server = DelegationServer(
            "198.41.0.4", "",
            [Delegation("net", (("a.gtld-servers.net", "192.5.6.30"),))],
            rate_limiter=limiter,
        )
        server.attach(network)
        received = []
        network.bind(CLIENT_IP, 5555, lambda dg, net: received.append(dg))
        for index in range(4):
            query = make_query("www.example.net", msg_id=index)
            network.send(
                Datagram(
                    CLIENT_IP, 5555, server.ip, 53, encode_message(query)
                )
            )
        network.run()
        assert len(received) == 1
        assert limiter.dropped == 3
        assert server.queries_served == 4
