"""Forwarding resolver (DNS proxy) tests."""

import dataclasses

import pytest

from repro.dnslib.constants import QueryType, Rcode
from repro.dnslib.message import make_query
from repro.dnslib.records import OptData, ResourceRecord
from repro.dnslib.wire import decode_message, encode_message
from repro.dnslib.zone import parse_master_file
from repro.dnssrv.forwarder import ForwardingResolver, _Outstanding
from repro.dnssrv.hierarchy import build_hierarchy
from repro.dnssrv.recursive import RecursiveResolver
from repro.netsim.network import Network
from repro.netsim.packet import Datagram

ZONE_TEXT = """\
$ORIGIN ucfsealresearch.net.
$TTL 300
@ IN SOA ns1 hostmaster 1 2 3 4 5
or000.0000000 IN A 45.76.1.10
"""

PROXY_IP = "201.10.0.5"
UPSTREAM_IP = "93.184.10.1"
CLIENT_IP = "8.8.4.100"


def build_world(mangle=None):
    network = Network()
    hierarchy = build_hierarchy(network)
    hierarchy.auth.load_zone(parse_master_file(ZONE_TEXT))
    upstream = RecursiveResolver(UPSTREAM_IP, hierarchy.root_servers)
    upstream.attach(network)
    proxy = ForwardingResolver(PROXY_IP, UPSTREAM_IP, mangle=mangle)
    proxy.attach(network)
    return network, proxy


def ask(network, qname, msg_id=9):
    responses = []
    network.bind(CLIENT_IP, 5555, lambda dg, net: responses.append(dg))
    query = make_query(qname, msg_id=msg_id)
    network.send(Datagram(CLIENT_IP, 5555, PROXY_IP, 53, encode_message(query)))
    network.run()
    return [decode_message(dg.payload) for dg in responses]


class TestForwarder:
    def test_relays_answer_with_original_id(self):
        network, proxy = build_world()
        (response,) = ask(network, "or000.0000000.ucfsealresearch.net", msg_id=321)
        assert response.header.msg_id == 321
        assert response.rcode == Rcode.NOERROR
        assert response.first_a_record().data.address == "45.76.1.10"
        assert proxy.forwarded == 1
        assert proxy.relayed == 1

    def test_mangle_hook_applies(self):
        def strip_ra(message):
            flags = dataclasses.replace(message.header.flags, ra=False)
            message.header = dataclasses.replace(message.header, flags=flags)
            return message

        network, _ = build_world(mangle=strip_ra)
        (response,) = ask(network, "or000.0000000.ucfsealresearch.net")
        assert not response.header.flags.ra  # CPE firmware rewrote the bit

    def test_dead_upstream_means_silence(self):
        network = Network()
        proxy = ForwardingResolver(PROXY_IP, "203.0.113.77")
        proxy.attach(network)
        responses = ask(network, "x.ucfsealresearch.net")
        assert responses == []

    def test_garbage_client_query_ignored(self):
        network, proxy = build_world()
        network.send(Datagram(CLIENT_IP, 5555, PROXY_IP, 53, b"garbage"))
        network.run()
        assert proxy.forwarded == 0


def build_blackholed(horizon=5.0):
    """A proxy whose upstream never answers (TEST-NET, unbound)."""
    network = Network()
    proxy = ForwardingResolver(
        PROXY_IP, "203.0.113.77", eviction_horizon=horizon
    )
    proxy.attach(network)
    return network, proxy


def send_query(network, qname, msg_id=1):
    query = make_query(qname, msg_id=msg_id)
    network.send(
        Datagram(CLIENT_IP, 5555, PROXY_IP, 53, encode_message(query))
    )
    network.run()


class TestOutstandingEviction:
    """Regression: the outstanding table leaked forever on a blackholed
    upstream, pinning the serve daemon's drain gate."""

    def test_blackholed_entries_evicted_after_the_horizon(self):
        network, proxy = build_blackholed(horizon=5.0)
        for index in range(4):
            send_query(network, f"q{index}.ucfsealresearch.net", index + 1)
        assert proxy.pending_count == 4
        network.schedule(5.0, lambda: None)
        network.run()
        # Drain polling alone (pending_count) must retire dead entries:
        # no further client or upstream traffic is needed.
        assert proxy.pending_count == 0
        assert proxy.evicted == 4

    def test_entries_survive_within_the_horizon(self):
        network, proxy = build_blackholed(horizon=5.0)
        send_query(network, "q.ucfsealresearch.net")
        network.schedule(4.9, lambda: None)
        network.run()
        assert proxy.pending_count == 1
        assert proxy.evicted == 0

    def test_handler_traffic_sweeps_at_most_once_per_horizon(self):
        network, proxy = build_blackholed(horizon=5.0)
        send_query(network, "old.ucfsealresearch.net", 1)
        network.schedule(6.0, lambda: None)
        network.run()
        # The next client query runs the amortized sweep inline.
        send_query(network, "new.ucfsealresearch.net", 2)
        assert proxy.evicted == 1
        assert len(proxy._outstanding) == 1  # only the fresh entry

    def test_answered_queries_are_not_counted_evicted(self):
        network, proxy = build_world()
        (response,) = ask(network, "or000.0000000.ucfsealresearch.net")
        assert response.rcode == Rcode.NOERROR
        network.schedule(60.0, lambda: None)
        network.run()
        assert proxy.pending_count == 0
        assert proxy.evicted == 0

    def test_horizon_none_disables_the_sweep(self):
        network = Network()
        proxy = ForwardingResolver(
            PROXY_IP, "203.0.113.77", eviction_horizon=None
        )
        proxy.attach(network)
        send_query(network, "q.ucfsealresearch.net")
        network.schedule(3600.0, lambda: None)
        network.run()
        assert proxy.pending_count == 1

    def test_non_positive_horizon_rejected(self):
        with pytest.raises(ValueError, match="eviction_horizon"):
            ForwardingResolver(PROXY_IP, "1.2.3.4", eviction_horizon=0.0)


class TestTxidAllocation:
    """Regression: txid wraparound overwrote a still-outstanding entry,
    orphaning its client and cross-wiring the late answer."""

    def stuff(self, proxy, ids):
        placeholder = Datagram(CLIENT_IP, 5555, PROXY_IP, 53, b"")
        for msg_id in ids:
            proxy._outstanding[msg_id] = _Outstanding(
                placeholder, 0.0, proxy.upstream_ip
            )

    def test_allocation_skips_ids_still_in_flight(self):
        network, proxy = build_blackholed(horizon=3600.0)
        self.stuff(proxy, [1, 2, 3])
        proxy._next_id = 1
        send_query(network, "q.ucfsealresearch.net")
        assert 4 in proxy._outstanding
        assert proxy.txid_collisions == 3
        assert len(proxy._outstanding) == 4

    def test_wraparound_probes_past_the_top_id(self):
        network, proxy = build_blackholed(horizon=3600.0)
        self.stuff(proxy, [0xFFFF, 1])
        proxy._next_id = 0xFFFF
        send_query(network, "q.ucfsealresearch.net")
        assert 2 in proxy._outstanding
        assert proxy.txid_collisions == 2

    def test_more_than_65535_in_flight_drops_instead_of_overwriting(self):
        network, proxy = build_blackholed(horizon=3600.0)
        self.stuff(proxy, range(1, 0x10000))  # every id busy
        before = dict(proxy._outstanding)
        send_query(network, "overflow.ucfsealresearch.net")
        assert proxy.txid_exhausted == 1
        assert proxy.forwarded == 0
        assert proxy._outstanding == before  # nothing overwritten

    def test_slot_freed_by_an_answer_is_reusable(self):
        network, proxy = build_world()
        responses = []
        network.bind(CLIENT_IP, 5555, lambda dg, net: responses.append(dg))
        for msg_id in (9, 10):
            query = make_query("or000.0000000.ucfsealresearch.net", msg_id=msg_id)
            network.send(
                Datagram(CLIENT_IP, 5555, PROXY_IP, 53, encode_message(query))
            )
            network.run()
        assert proxy.pending_count == 0
        assert len(responses) == 2
        assert proxy.relayed == 2


class TestAdditionalsCarriedThrough:
    """Regression: the rewritten upstream query dropped the client's
    additional section, stripping EDNS OPT pseudo-records."""

    def opt_query(self, msg_id=21):
        query = make_query("or000.0000000.ucfsealresearch.net", msg_id=msg_id)
        # A minimal EDNS0 OPT: root owner, class carries the UDP payload
        # size, TTL carries the extended-rcode/flags word.
        query.additionals.append(
            ResourceRecord("", QueryType.OPT, 4096, 0, OptData())
        )
        return query

    def test_opt_record_reaches_the_upstream_on_the_wire(self):
        network = Network()
        seen = []
        network.bind(
            UPSTREAM_IP, 53,
            lambda dg, net: seen.append(decode_message(dg.payload)),
        )
        proxy = ForwardingResolver(PROXY_IP, UPSTREAM_IP)
        proxy.attach(network)
        network.send(
            Datagram(
                CLIENT_IP, 5555, PROXY_IP, 53,
                encode_message(self.opt_query()),
            )
        )
        network.run()
        (upstream_query,) = seen
        (opt,) = upstream_query.additionals
        assert opt.rtype == QueryType.OPT
        assert int(opt.rclass) == 4096
