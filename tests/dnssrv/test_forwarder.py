"""Forwarding resolver (DNS proxy) tests."""

import dataclasses

from repro.dnslib.constants import Rcode
from repro.dnslib.message import make_query
from repro.dnslib.wire import decode_message, encode_message
from repro.dnslib.zone import parse_master_file
from repro.dnssrv.forwarder import ForwardingResolver
from repro.dnssrv.hierarchy import build_hierarchy
from repro.dnssrv.recursive import RecursiveResolver
from repro.netsim.network import Network
from repro.netsim.packet import Datagram

ZONE_TEXT = """\
$ORIGIN ucfsealresearch.net.
$TTL 300
@ IN SOA ns1 hostmaster 1 2 3 4 5
or000.0000000 IN A 45.76.1.10
"""

PROXY_IP = "201.10.0.5"
UPSTREAM_IP = "93.184.10.1"
CLIENT_IP = "8.8.4.100"


def build_world(mangle=None):
    network = Network()
    hierarchy = build_hierarchy(network)
    hierarchy.auth.load_zone(parse_master_file(ZONE_TEXT))
    upstream = RecursiveResolver(UPSTREAM_IP, hierarchy.root_servers)
    upstream.attach(network)
    proxy = ForwardingResolver(PROXY_IP, UPSTREAM_IP, mangle=mangle)
    proxy.attach(network)
    return network, proxy


def ask(network, qname, msg_id=9):
    responses = []
    network.bind(CLIENT_IP, 5555, lambda dg, net: responses.append(dg))
    query = make_query(qname, msg_id=msg_id)
    network.send(Datagram(CLIENT_IP, 5555, PROXY_IP, 53, encode_message(query)))
    network.run()
    return [decode_message(dg.payload) for dg in responses]


class TestForwarder:
    def test_relays_answer_with_original_id(self):
        network, proxy = build_world()
        (response,) = ask(network, "or000.0000000.ucfsealresearch.net", msg_id=321)
        assert response.header.msg_id == 321
        assert response.rcode == Rcode.NOERROR
        assert response.first_a_record().data.address == "45.76.1.10"
        assert proxy.forwarded == 1
        assert proxy.relayed == 1

    def test_mangle_hook_applies(self):
        def strip_ra(message):
            flags = dataclasses.replace(message.header.flags, ra=False)
            message.header = dataclasses.replace(message.header, flags=flags)
            return message

        network, _ = build_world(mangle=strip_ra)
        (response,) = ask(network, "or000.0000000.ucfsealresearch.net")
        assert not response.header.flags.ra  # CPE firmware rewrote the bit

    def test_dead_upstream_means_silence(self):
        network = Network()
        proxy = ForwardingResolver(PROXY_IP, "203.0.113.77")
        proxy.attach(network)
        responses = ask(network, "x.ucfsealresearch.net")
        assert responses == []

    def test_garbage_client_query_ignored(self):
        network, proxy = build_world()
        network.send(Datagram(CLIENT_IP, 5555, PROXY_IP, 53, b"garbage"))
        network.run()
        assert proxy.forwarded == 0
