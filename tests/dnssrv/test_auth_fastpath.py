"""Authoritative-server template fast path: equivalence and gating."""

from repro.dnslib.message import make_query
from repro.dnslib.wire import encode_message
from repro.dnslib.zone import parse_master_file
from repro.dnssrv.auth import AuthoritativeServer
from repro.injection.experiment import PoisoningAuthServer
from repro.netsim.network import Network
from repro.netsim.packet import Datagram

ZONE_TEXT = """\
$ORIGIN ucfsealresearch.net.
$TTL 300
@ IN SOA ns1 hostmaster 1 2 3 4 5
or000.0000000 IN A 45.76.1.10
or000.0000001 IN A 45.76.1.10
or000.0000002 IN A 45.76.1.10
www IN CNAME or000.0000000
"""

AUTH_IP = "45.76.1.1"
CLIENT_IP = "10.0.0.9"

QNAMES = [f"or000.000000{i}.ucfsealresearch.net" for i in range(3)]


def serve(server_cls=AuthoritativeServer, qnames=QNAMES, repeat=2):
    network = Network()
    auth = server_cls(AUTH_IP)
    auth.load_zone(parse_master_file(ZONE_TEXT))
    auth.attach(network)
    replies = []
    network.bind(CLIENT_IP, 5353, lambda dg, net: replies.append(dg.payload))
    msg_id = 0
    for _ in range(repeat):
        for qname in qnames:
            msg_id += 1
            network.send(
                Datagram(
                    CLIENT_IP, 5353, AUTH_IP, 53,
                    encode_message(
                        make_query(qname, msg_id=msg_id,
                                   recursion_desired=False)
                    ),
                )
            )
    network.run()
    return auth, replies


class TestAuthFastPath:
    def test_fast_replies_match_slow_oracle(self):
        auth, replies = serve(repeat=3)
        # An identical server answering through respond()/encode only:
        # handler bound directly past the template path.
        oracle = AuthoritativeServer(AUTH_IP)
        oracle.load_zone(parse_master_file(ZONE_TEXT))
        oracle._fast_ok = False
        network = Network()
        oracle.attach(network)
        slow_replies = []
        network.bind(CLIENT_IP, 5353,
                     lambda dg, net: slow_replies.append(dg.payload))
        msg_id = 0
        for _ in range(3):
            for qname in QNAMES:
                msg_id += 1
                network.send(
                    Datagram(
                        CLIENT_IP, 5353, AUTH_IP, 53,
                        encode_message(
                            make_query(qname, msg_id=msg_id,
                                       recursion_desired=False)
                        ),
                    )
                )
        network.run()
        assert sorted(replies) == sorted(slow_replies)
        assert auth.queries_served == oracle.queries_served == 9

    def test_counters_and_log_cover_fast_serves(self):
        auth, replies = serve(repeat=2)
        assert auth.queries_served == 6
        assert len(auth.query_log) == 6
        assert [entry.qname for entry in auth.query_log] == QNAMES * 2
        assert all(entry.rcode == 0 for entry in auth.query_log)

    def test_cname_answers_stay_on_slow_path(self):
        # A CNAME lookup is not the single-A shape; it must still be
        # answered (slow path), never templated wrongly.
        auth, replies = serve(qnames=["www.ucfsealresearch.net"], repeat=2)
        assert len(replies) == 2
        assert replies[0][2:] == replies[1][2:]  # only msg_id differs
        assert auth.queries_served == 2

    def test_respond_override_disables_fast_path(self):
        # The poisoning experiment's server overrides respond(); every
        # query must keep flowing through it.
        assert PoisoningAuthServer(AUTH_IP)._fast_ok is False
        auth, replies = serve(server_cls=PoisoningAuthServer)
        assert len(replies) == 6
        assert auth.queries_served == 6
