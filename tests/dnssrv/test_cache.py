"""DNS cache tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dnslib.constants import QueryType
from repro.dnslib.records import AData, ResourceRecord
from repro.dnssrv.cache import DnsCache


def a_record(name="x.example.com", address="1.2.3.4", ttl=60):
    return ResourceRecord(name, QueryType.A, ttl=ttl, data=AData(address))


class TestDnsCache:
    def test_hit_before_expiry(self):
        cache = DnsCache()
        cache.put("x.example.com", QueryType.A, [a_record(ttl=60)], now=0.0)
        records = cache.get("x.example.com", QueryType.A, now=59.0)
        assert records[0].data.address == "1.2.3.4"
        assert cache.stats.hits == 1

    def test_miss_after_expiry(self):
        cache = DnsCache()
        cache.put("x.example.com", QueryType.A, [a_record(ttl=60)], now=0.0)
        assert cache.get("x.example.com", QueryType.A, now=60.0) is None
        assert cache.stats.expirations == 1

    def test_min_ttl_of_set_governs(self):
        cache = DnsCache()
        records = [a_record(ttl=300), a_record(address="5.6.7.8", ttl=10)]
        cache.put("x.example.com", QueryType.A, records, now=0.0)
        assert cache.get("x.example.com", QueryType.A, now=11.0) is None

    def test_zero_ttl_not_cached(self):
        cache = DnsCache()
        cache.put("x.example.com", QueryType.A, [a_record(ttl=0)], now=0.0)
        assert len(cache) == 0

    def test_empty_rrset_not_cached(self):
        cache = DnsCache()
        cache.put("x.example.com", QueryType.A, [], now=0.0)
        assert len(cache) == 0

    def test_qname_case_insensitive(self):
        cache = DnsCache()
        cache.put("X.Example.COM", QueryType.A, [a_record()], now=0.0)
        assert cache.get("x.example.com", QueryType.A, now=1.0) is not None

    def test_type_is_part_of_key(self):
        cache = DnsCache()
        cache.put("x.example.com", QueryType.A, [a_record()], now=0.0)
        assert cache.get("x.example.com", QueryType.MX, now=1.0) is None

    def test_lru_eviction(self):
        cache = DnsCache(max_entries=2)
        cache.put("a.example.com", QueryType.A, [a_record("a.example.com")], now=0.0)
        cache.put("b.example.com", QueryType.A, [a_record("b.example.com")], now=0.0)
        cache.get("a.example.com", QueryType.A, now=1.0)  # refresh a
        cache.put("c.example.com", QueryType.A, [a_record("c.example.com")], now=1.0)
        assert cache.contains("a.example.com")
        assert not cache.contains("b.example.com")
        assert cache.stats.evictions == 1

    def test_purge_expired(self):
        cache = DnsCache()
        cache.put("a.example.com", QueryType.A, [a_record("a.example.com", ttl=5)], 0.0)
        cache.put("b.example.com", QueryType.A, [a_record("b.example.com", ttl=500)], 0.0)
        assert cache.purge_expired(now=10.0) == 1
        assert len(cache) == 1

    def test_clear(self):
        cache = DnsCache()
        cache.put("a.example.com", QueryType.A, [a_record("a.example.com")], 0.0)
        cache.clear()
        assert len(cache) == 0

    def test_returned_list_is_a_copy(self):
        cache = DnsCache()
        cache.put("a.example.com", QueryType.A, [a_record("a.example.com")], 0.0)
        first = cache.get("a.example.com", QueryType.A, 1.0)
        first.append("junk")
        second = cache.get("a.example.com", QueryType.A, 1.0)
        assert len(second) == 1

    def test_bad_max_entries(self):
        with pytest.raises(ValueError):
            DnsCache(max_entries=0)

    def test_hit_rate(self):
        cache = DnsCache()
        cache.put("a.example.com", QueryType.A, [a_record("a.example.com")], 0.0)
        cache.get("a.example.com", QueryType.A, 1.0)
        cache.get("missing.example.com", QueryType.A, 1.0)
        assert cache.stats.hit_rate == 0.5

    @given(st.integers(1, 20), st.integers(1, 40))
    def test_size_never_exceeds_max(self, max_entries, inserts):
        cache = DnsCache(max_entries=max_entries)
        for index in range(inserts):
            name = f"h{index}.example.com"
            cache.put(name, QueryType.A, [a_record(name)], now=0.0)
        assert len(cache) <= max_entries
