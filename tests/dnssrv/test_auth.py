"""Authoritative server tests."""

from repro.dnslib.constants import QueryType, Rcode
from repro.dnslib.message import make_query
from repro.dnslib.wire import decode_message, encode_message
from repro.dnslib.zone import Zone, parse_master_file
from repro.dnssrv.auth import AuthoritativeServer
from repro.netsim.network import Network
from repro.netsim.packet import Datagram

ZONE_TEXT = """\
$ORIGIN ucfsealresearch.net.
$TTL 300
@ IN SOA ns1 hostmaster 1 2 3 4 5
@ IN NS ns1
ns1 IN A 45.76.1.10
or000.0000000 IN A 45.76.1.10
alias IN CNAME or000.0000000
"""


def make_server():
    server = AuthoritativeServer("45.76.1.10")
    server.load_zone(parse_master_file(ZONE_TEXT))
    return server


class TestRespond:
    def test_authoritative_answer(self):
        server = make_server()
        response = server.respond(make_query("or000.0000000.ucfsealresearch.net"), 0.0)
        assert response.header.flags.aa
        assert not response.header.flags.ra
        assert response.rcode == Rcode.NOERROR
        assert response.answers[0].data.address == "45.76.1.10"

    def test_nxdomain_with_soa(self):
        server = make_server()
        response = server.respond(make_query("missing.ucfsealresearch.net"), 0.0)
        assert response.rcode == Rcode.NXDOMAIN
        assert response.header.flags.aa
        assert response.authorities[0].rtype == QueryType.SOA

    def test_nodata(self):
        server = make_server()
        response = server.respond(
            make_query("or000.0000000.ucfsealresearch.net", qtype=QueryType.MX), 0.0
        )
        assert response.rcode == Rcode.NOERROR
        assert response.answers == []

    def test_refused_out_of_zone(self):
        server = make_server()
        response = server.respond(make_query("www.google.com"), 0.0)
        assert response.rcode == Rcode.REFUSED
        assert not response.header.flags.aa

    def test_cname_chain_included(self):
        server = make_server()
        response = server.respond(make_query("alias.ucfsealresearch.net"), 0.0)
        types = [int(record.rtype) for record in response.answers]
        assert types == [QueryType.CNAME, QueryType.A]

    def test_empty_question_gets_formerr(self):
        from repro.dnslib.message import DnsMessage

        server = make_server()
        response = server.respond(DnsMessage(), 0.0)
        assert response.rcode == Rcode.FORMERR


class TestClusters:
    def test_servfail_during_hard_reload_window(self):
        server = AuthoritativeServer("45.76.1.10", cluster_load_seconds=60.0)
        zone = Zone("ucfsealresearch.net")
        for index in range(100):
            zone.add_a(f"or000.{index:07d}.ucfsealresearch.net", "45.76.1.10")
        ready_at = server.install_cluster(zone, now=0.0, graceful=False)
        assert 0 < ready_at < 60.0  # scaled by cluster size
        during = server.respond(
            make_query("or000.0000000.ucfsealresearch.net"), ready_at / 2
        )
        assert during.rcode == Rcode.SERVFAIL
        after = server.respond(make_query("or000.0000000.ucfsealresearch.net"), ready_at)
        assert after.rcode == Rcode.NOERROR
        assert server.queries_during_reload == 1

    def test_graceful_reload_keeps_serving(self):
        server = AuthoritativeServer("45.76.1.10", cluster_load_seconds=60.0)
        first = Zone("ucfsealresearch.net")
        first.add_a("or000.0000000.ucfsealresearch.net", "45.76.1.10")
        server.install_cluster(first, now=0.0)
        second = Zone("ucfsealresearch.net")
        second.add_a("or001.0000000.ucfsealresearch.net", "45.76.1.10")
        ready_at = server.install_cluster(second, now=10.0, graceful=True)
        # During the graceful load both clusters answer.
        old = server.respond(make_query("or000.0000000.ucfsealresearch.net"), 10.001)
        assert old.rcode == Rcode.NOERROR
        new = server.respond(make_query("or001.0000000.ucfsealresearch.net"), ready_at)
        assert new.rcode == Rcode.NOERROR
        assert server.queries_during_reload == 0

    def test_reload_time_scales_with_size(self):
        server = AuthoritativeServer("45.76.1.10", cluster_load_seconds=60.0)
        small = Zone("ucfsealresearch.net")
        small.add_a("a.ucfsealresearch.net", "1.2.3.4")
        big = Zone("ucfsealresearch.net")
        for index in range(1000):
            big.add_a(f"b{index}.ucfsealresearch.net", "1.2.3.4")
        t_small = server.install_cluster(small, now=0.0)
        t_big = server.install_cluster(big, now=100.0) - 100.0
        assert t_big > t_small

    def test_zone_history_bounded(self):
        server = AuthoritativeServer("45.76.1.10", zone_history=2)
        zones = []
        for number in range(3):
            zone = Zone("ucfsealresearch.net")
            zone.add_a(f"or{number:03d}.0000000.ucfsealresearch.net", "1.1.1.1")
            zones.append(zone)
            server.install_cluster(zone, now=float(number))
        # The newest two clusters remain queryable; the oldest is gone.
        assert server.has_subdomain_loaded("or002.0000000.ucfsealresearch.net")
        assert server.has_subdomain_loaded("or001.0000000.ucfsealresearch.net")
        assert not server.has_subdomain_loaded("or000.0000000.ucfsealresearch.net")
        assert server.zone_count == 1  # one origin

    def test_zone_history_none_retains_every_cluster(self):
        # The campaign setting (build_hierarchy): clusters share an
        # origin but are never unloaded, so a subdomain reused long
        # after its cluster was superseded still resolves.
        server = AuthoritativeServer("45.76.1.10", zone_history=None)
        for number in range(10):
            zone = Zone("ucfsealresearch.net")
            zone.add_a(f"or{number:03d}.0000000.ucfsealresearch.net", "1.1.1.1")
            server.install_cluster(zone, now=float(number))
        for number in range(10):
            assert server.has_subdomain_loaded(
                f"or{number:03d}.0000000.ucfsealresearch.net"
            )

    def test_zone_history_validation(self):
        import pytest

        with pytest.raises(ValueError):
            AuthoritativeServer("45.76.1.10", zone_history=0)


class TestOverNetwork:
    def test_query_logged_and_answered(self):
        network = Network()
        server = make_server()
        server.attach(network)
        responses = []
        network.bind("9.9.9.9", 4000, lambda dg, net: responses.append(dg))
        query = make_query("or000.0000000.ucfsealresearch.net", msg_id=55)
        network.send(
            Datagram("9.9.9.9", 4000, "45.76.1.10", 53, encode_message(query))
        )
        network.run()
        assert len(responses) == 1
        decoded = decode_message(responses[0].payload)
        assert decoded.header.msg_id == 55
        assert decoded.answers
        assert len(server.query_log) == 1
        entry = server.query_log[0]
        assert entry.src_ip == "9.9.9.9"
        assert entry.qname == "or000.0000000.ucfsealresearch.net"

    def test_garbage_payload_dropped(self):
        network = Network()
        server = make_server()
        server.attach(network)
        network.send(Datagram("9.9.9.9", 4000, "45.76.1.10", 53, b"nonsense"))
        network.run()
        assert server.query_log == []

    def test_queries_for_join_key(self):
        network = Network()
        server = make_server()
        server.attach(network)
        network.bind("9.9.9.9", 4000, lambda dg, net: None)
        for qname in ("or000.0000000.ucfsealresearch.net", "missing.ucfsealresearch.net"):
            network.send(
                Datagram(
                    "9.9.9.9", 4000, "45.76.1.10", 53, encode_message(make_query(qname))
                )
            )
        network.run()
        assert len(server.queries_for("or000.0000000.ucfsealresearch.net")) == 1
