"""Root/TLD delegation server tests."""

import pytest

from repro.dnslib.constants import QueryType, Rcode
from repro.dnslib.message import make_query
from repro.dnssrv.delegation import Delegation, DelegationServer


def make_root():
    return DelegationServer(
        "198.41.0.4",
        "",
        [Delegation("net", (("a.gtld-servers.net", "192.5.6.30"),))],
    )


class TestDelegationServer:
    def test_referral_structure(self):
        root = make_root()
        response = root.respond(make_query("or000.x.ucfsealresearch.net"))
        assert response.rcode == Rcode.NOERROR
        assert response.answers == []
        assert response.authorities[0].rtype == QueryType.NS
        assert response.authorities[0].name == "net"
        assert response.additionals[0].data.address == "192.5.6.30"
        assert not response.header.flags.aa
        assert not response.header.flags.ra

    def test_nxdomain_for_unknown_tld(self):
        root = make_root()
        response = root.respond(make_query("example.nosuchtld"))
        assert response.rcode == Rcode.NXDOMAIN

    def test_out_of_bailiwick_refused(self):
        tld = DelegationServer(
            "192.5.6.30",
            "net",
            [Delegation("ucfsealresearch.net", (("ns1.ucfsealresearch.net", "45.76.1.10"),))],
        )
        response = tld.respond(make_query("www.example.com"))
        assert response.rcode == Rcode.REFUSED

    def test_most_specific_delegation_wins(self):
        tld = DelegationServer("192.5.6.30", "net")
        tld.add_delegation(Delegation("example.net", (("ns.example.net", "1.1.1.1"),)))
        tld.add_delegation(
            Delegation("deep.example.net", (("ns.deep.example.net", "2.2.2.2"),))
        )
        delegation = tld.delegation_for("www.deep.example.net")
        assert delegation.zone == "deep.example.net"

    def test_delegation_must_be_in_zone(self):
        tld = DelegationServer("192.5.6.30", "net")
        with pytest.raises(ValueError):
            tld.add_delegation(Delegation("example.com", (("ns", "1.1.1.1"),)))

    def test_empty_question_formerr(self):
        from repro.dnslib.message import DnsMessage

        root = make_root()
        assert root.respond(DnsMessage()).rcode == Rcode.FORMERR

    def test_delegation_count(self):
        assert make_root().delegation_count == 1
