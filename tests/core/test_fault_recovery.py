"""Failure domains: chaos-killed shards, degraded campaigns, resume.

The chaos hooks (``REPRO_CHAOS_RAISE`` / ``REPRO_CHAOS_EXIT``) make a
chosen shard fail its first ``count`` attempts, so every recovery path
is exercised deterministically: requeue-and-recover, retry exhaustion
with a degraded manifest, total failure, and checkpoint/resume.
"""

import dataclasses

import pytest

from repro.core import Campaign, CampaignConfig
from repro.core.shard import (
    CHAOS_EXIT_ENV,
    CHAOS_RAISE_ENV,
    ShardExecutionError,
    ShardTask,
    checkpoint_fingerprint,
    run_shard,
    run_sharded,
    shard_universe,
)
from repro.datasets.store import load_shard_checkpoints
from repro.netsim.seeds import derive_seed

SCALE = 65536
CONFIG = CampaignConfig(year=2018, scale=SCALE, seed=3)


@pytest.fixture(scope="module")
def serial():
    return Campaign(CONFIG).run()


def sharded_config(**overrides):
    return dataclasses.replace(CONFIG, workers=4, **overrides)


class TestShardFailureReporting:
    def test_error_carries_index_and_seed(self, monkeypatch):
        monkeypatch.setenv(CHAOS_RAISE_ENV, "1:99")
        with pytest.raises(ShardExecutionError) as excinfo:
            run_shard(ShardTask(config=CONFIG, index=1, workers=4))
        error = excinfo.value
        expected_seed = derive_seed(CONFIG.seed, 1, 4)
        assert error.index == 1
        assert error.workers == 4
        assert error.seed == expected_seed
        assert "shard 1/4" in str(error)
        assert f"{expected_seed:#x}" in str(error)
        assert "run_shard(ShardTask(config, index=1, workers=4))" in str(error)

    def test_unexpected_exceptions_are_wrapped(self, monkeypatch):
        monkeypatch.setattr(
            "repro.core.shard._run_shard_scan",
            lambda task, seed, hub=None, event_batch=None: (
                _ for _ in ()
            ).throw(KeyError("boom")),
        )
        with pytest.raises(ShardExecutionError, match="KeyError"):
            run_shard(ShardTask(config=CONFIG, index=2, workers=4))

    def test_chaos_attempt_threshold(self, monkeypatch):
        monkeypatch.setenv(CHAOS_RAISE_ENV, "0:2")
        with pytest.raises(ShardExecutionError):
            run_shard(ShardTask(config=CONFIG, index=0, workers=4, attempt=1))
        outcome = run_shard(
            ShardTask(config=CONFIG, index=0, workers=4, attempt=2)
        )
        assert outcome.index == 0


class TestCrashRecovery:
    def test_killed_shard_requeued_byte_identical(self, serial, monkeypatch):
        monkeypatch.setenv(CHAOS_RAISE_ENV, "0:1")
        result = run_sharded(
            sharded_config(max_shard_retries=1), parallelism="inline"
        )
        assert result.degraded is None
        assert result.report() == serial.report()

    def test_exhausted_retries_degrade_gracefully(self, monkeypatch):
        monkeypatch.setenv(CHAOS_RAISE_ENV, "2:99")
        result = run_sharded(
            sharded_config(max_shard_retries=1), parallelism="inline"
        )
        degraded = result.degraded
        assert degraded is not None
        assert [record.index for record in degraded.failed_shards] == [2]
        record = degraded.failed_shards[0]
        assert record.seed == derive_seed(CONFIG.seed, 2, 4)
        assert record.attempts == 2  # initial try + one retry
        # Coverage accounting: the probes the campaign did execute are
        # exactly the planned universe minus the dead shard's slice.
        assert degraded.probes_lost == record.probes_lost
        assert result.capture.q1_sent == degraded.probes_completed
        assert 0.7 < degraded.coverage < 0.8  # one shard of four, strided
        assert "DEGRADED" in result.summary()

    def test_all_shards_failing_raises(self, monkeypatch):
        monkeypatch.setenv(
            CHAOS_RAISE_ENV, "0:99,1:99,2:99,3:99"
        )
        with pytest.raises(ShardExecutionError, match="all 4 shard"):
            run_sharded(
                sharded_config(max_shard_retries=0), parallelism="inline"
            )

    def test_hard_killed_worker_recovered_in_fresh_pool(
        self, serial, monkeypatch
    ):
        # os._exit(13) takes the worker process down mid-flight, which
        # breaks the whole pool; the recovery loop must requeue into a
        # fresh pool and still merge byte-identically.
        monkeypatch.setenv(CHAOS_EXIT_ENV, "1:1")
        result = run_sharded(
            sharded_config(max_shard_retries=2), parallelism="process"
        )
        assert result.degraded is None
        assert result.report() == serial.report()


class TestCheckpointResume:
    def test_resume_runs_only_missing_shards(self, serial, monkeypatch, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        monkeypatch.setenv(CHAOS_RAISE_ENV, "3:99")
        interrupted = run_sharded(
            sharded_config(max_shard_retries=0),
            parallelism="inline",
            checkpoint_dir=checkpoint_dir,
        )
        assert interrupted.degraded is not None
        saved = load_shard_checkpoints(
            checkpoint_dir, checkpoint_fingerprint(sharded_config())
        )
        assert sorted(saved) == [0, 1, 2]

        monkeypatch.delenv(CHAOS_RAISE_ENV)
        executed = []

        def counting_run_shard(task):
            executed.append(task.index)
            return run_shard(task)

        monkeypatch.setattr(
            "repro.core.shard.run_shard", counting_run_shard
        )
        resumed = run_sharded(
            sharded_config(),
            parallelism="inline",
            checkpoint_dir=checkpoint_dir,
            resume=True,
        )
        assert executed == [3]
        assert resumed.degraded is None
        assert resumed.report() == serial.report()
        saved = load_shard_checkpoints(
            checkpoint_dir, checkpoint_fingerprint(sharded_config())
        )
        assert sorted(saved) == [0, 1, 2, 3]

    def test_resume_with_everything_checkpointed_runs_nothing(
        self, serial, monkeypatch, tmp_path
    ):
        checkpoint_dir = tmp_path / "ckpt"
        run_sharded(
            sharded_config(), parallelism="inline",
            checkpoint_dir=checkpoint_dir,
        )
        monkeypatch.setattr(
            "repro.core.shard.run_shard",
            lambda task: pytest.fail("no shard should re-run"),
        )
        resumed = Campaign(sharded_config()).run(
            resume_from=checkpoint_dir
        )
        assert resumed.report() == serial.report()

    def test_resume_rejects_a_different_campaign(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        run_sharded(
            sharded_config(), parallelism="inline",
            checkpoint_dir=checkpoint_dir,
        )
        with pytest.raises(ValueError, match="different campaign"):
            run_sharded(
                dataclasses.replace(sharded_config(), seed=4),
                parallelism="inline",
                checkpoint_dir=checkpoint_dir,
                resume=True,
            )

    def test_resume_tolerates_raised_retry_budget(self, tmp_path):
        # max_shard_retries is excluded from the fingerprint: retrying
        # harder on resume is a legitimate recovery move.
        checkpoint_dir = tmp_path / "ckpt"
        run_sharded(
            sharded_config(max_shard_retries=0), parallelism="inline",
            checkpoint_dir=checkpoint_dir,
        )
        run_sharded(
            sharded_config(max_shard_retries=3), parallelism="inline",
            checkpoint_dir=checkpoint_dir, resume=True,
        )

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_sharded(sharded_config(), parallelism="inline", resume=True)

    def test_torn_checkpoint_is_re_run(self, serial, monkeypatch, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        run_sharded(
            sharded_config(), parallelism="inline",
            checkpoint_dir=checkpoint_dir,
        )
        (checkpoint_dir / "shard_0002.pkl").write_bytes(b"torn write")
        executed = []

        def counting_run_shard(task):
            executed.append(task.index)
            return run_shard(task)

        monkeypatch.setattr(
            "repro.core.shard.run_shard", counting_run_shard
        )
        resumed = run_sharded(
            sharded_config(), parallelism="inline",
            checkpoint_dir=checkpoint_dir, resume=True,
        )
        assert executed == [2]
        assert resumed.report() == serial.report()

    def test_crash_between_tmp_write_and_rename_re_runs_only_that_shard(
        self, serial, monkeypatch, tmp_path
    ):
        # Simulate a worker killed mid-checkpoint: the shard's pickle
        # was written to its temp name but the rename never happened,
        # so the directory holds a stray *.tmp and no shard_0002.pkl.
        checkpoint_dir = tmp_path / "ckpt"
        run_sharded(
            sharded_config(), parallelism="inline",
            checkpoint_dir=checkpoint_dir,
        )
        committed = checkpoint_dir / "shard_0002.pkl"
        torn = checkpoint_dir / "shard_0002.pkl.tmp"
        torn.write_bytes(committed.read_bytes()[:64])
        committed.unlink()
        executed = []

        def counting_run_shard(task):
            executed.append(task.index)
            return run_shard(task)

        monkeypatch.setattr(
            "repro.core.shard.run_shard", counting_run_shard
        )
        resumed = run_sharded(
            sharded_config(), parallelism="inline",
            checkpoint_dir=checkpoint_dir, resume=True,
        )
        assert executed == [2]
        assert resumed.report() == serial.report()
        # The torn temp file was quarantined, never adopted.
        assert not torn.exists()
        assert (checkpoint_dir / "shard_0002.pkl.tmp.quarantined").exists()
        saved = load_shard_checkpoints(
            checkpoint_dir, checkpoint_fingerprint(sharded_config())
        )
        assert sorted(saved) == [0, 1, 2, 3]


class TestFaultProfileCampaigns:
    def test_hostile_profile_completes_with_retries(self):
        result = Campaign(
            dataclasses.replace(CONFIG, fault_profile="hostile")
        ).run()
        capture = result.capture
        assert capture.q1_sent == Campaign(CONFIG).run().capture.q1_sent
        assert capture.retries_sent > 0
        assert capture.retries_exhausted > 0

    def test_fault_profile_reduces_but_does_not_zero_coverage(self, serial):
        hostile = Campaign(
            dataclasses.replace(CONFIG, fault_profile="hostile")
        ).run()
        assert 0 < hostile.capture.r2_count <= serial.capture.r2_count

    def test_none_profile_is_byte_identical_to_default(self, serial):
        explicit = Campaign(
            dataclasses.replace(CONFIG, fault_profile="none")
        ).run()
        assert explicit.report() == serial.report()

    def test_unknown_profile_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="fault profile"):
            dataclasses.replace(CONFIG, fault_profile="chaotic")

    def test_sharded_fault_run_stable_per_worker_blackholes(self):
        # Stochastic faults differ per shard, but every worker count
        # sees the same planned universe and target accounting.
        hostile = dataclasses.replace(CONFIG, fault_profile="hostile")
        two = run_sharded(
            dataclasses.replace(hostile, workers=2), parallelism="inline"
        )
        four = run_sharded(
            dataclasses.replace(hostile, workers=4), parallelism="inline"
        )
        assert two.capture.q1_sent == four.capture.q1_sent


class TestShardUniverseAccounting:
    def test_probes_lost_matches_strided_slice(self, monkeypatch):
        monkeypatch.setenv(CHAOS_RAISE_ENV, "1:99")
        result = run_sharded(
            sharded_config(max_shard_retries=0), parallelism="inline"
        )
        from repro.core.shard import _campaign_universe

        universe = _campaign_universe(sharded_config())
        record = result.degraded.failed_shards[0]
        assert record.probes_lost == len(shard_universe(universe, 1, 4))
        assert result.degraded.probes_planned == len(universe)
