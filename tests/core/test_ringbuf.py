"""Unit tests for the SPSC result rings and the frame layer.

The rings are byte pipes: framing correctness (partial delivery,
frames split across reads, frames larger than the ring) lives here so
the multicore engine tests can assume the transport and focus on
campaign semantics.
"""

import multiprocessing
import os
import threading

import pytest

from repro.core.ringbuf import (
    KIND_ERROR,
    KIND_OUTCOME_COMPACT,
    KIND_OUTCOME_PICKLE,
    FrameParser,
    MemoryRing,
    PipeRing,
    ShmRing,
    create_ring,
    open_child_ring,
    pack_frame,
    shared_memory_available,
)


class TestFrameParser:
    def test_single_frame(self):
        parser = FrameParser()
        frames = parser.feed(pack_frame(KIND_OUTCOME_COMPACT, b"abc"))
        assert frames == [(KIND_OUTCOME_COMPACT, b"abc")]
        assert parser.pending_bytes == 0

    def test_byte_at_a_time_reassembly(self):
        parser = FrameParser()
        wire = pack_frame(KIND_ERROR, b"x" * 100)
        collected = []
        for i in range(len(wire)):
            collected += parser.feed(wire[i:i + 1])
        assert collected == [(KIND_ERROR, b"x" * 100)]

    def test_multiple_frames_one_read(self):
        parser = FrameParser()
        wire = pack_frame(1, b"a") + pack_frame(2, b"bb") + pack_frame(3, b"")
        assert parser.feed(wire) == [(1, b"a"), (2, b"bb"), (3, b"")]

    def test_partial_tail_stays_pending(self):
        parser = FrameParser()
        wire = pack_frame(KIND_OUTCOME_PICKLE, b"payload")
        assert parser.feed(wire[:-3]) == []
        assert parser.pending_bytes == len(wire) - 3
        assert parser.feed(wire[-3:]) == [(KIND_OUTCOME_PICKLE, b"payload")]


class TestMemoryRing:
    def test_write_read_clears(self):
        ring = MemoryRing()
        ring.write(b"hello")
        ring.write(b" world")
        assert ring.read() == b"hello world"
        assert ring.read() == b""

    def test_child_handle_is_itself(self):
        ring = MemoryRing()
        assert open_child_ring(ring.child_handle()) is ring


@pytest.mark.skipif(
    not shared_memory_available(), reason="no POSIX shared memory"
)
class TestShmRing:
    def test_round_trip_same_process(self):
        ring = ShmRing.create(capacity=256)
        try:
            writer = open_child_ring(ring.child_handle())
            writer.write(b"abc" * 10)
            assert ring.read() == b"abc" * 10
            assert ring.read() == b""
            writer.close()
        finally:
            ring.close()

    def test_wraparound(self):
        # Capacity 64: three 40-byte writes force the cursor past the
        # physical end twice; the byte stream must come out intact.
        ring = ShmRing.create(capacity=64)
        try:
            writer = open_child_ring(ring.child_handle())
            out = bytearray()
            for i in range(3):
                writer.write(bytes([i]) * 40)
                out += ring.read()
            writer.close()
            assert bytes(out) == b"\x00" * 40 + b"\x01" * 40 + b"\x02" * 40
        finally:
            ring.close()

    def test_oversized_write_flows_while_reader_drains(self):
        # A frame bigger than the ring streams through in chunks as
        # long as someone is draining the other end.
        ring = ShmRing.create(capacity=128)
        payload = os.urandom(1000)
        try:
            writer = open_child_ring(ring.child_handle())
            thread = threading.Thread(
                target=writer.write, args=(payload,), kwargs={"timeout": 10}
            )
            thread.start()
            out = bytearray()
            while len(out) < len(payload):
                out += ring.read()
            thread.join(timeout=10)
            assert not thread.is_alive()
            writer.close()
            assert bytes(out) == payload
        finally:
            ring.close()

    def test_full_ring_times_out_without_reader(self):
        ring = ShmRing.create(capacity=16)
        try:
            writer = open_child_ring(ring.child_handle())
            with pytest.raises(TimeoutError):
                writer.write(b"x" * 64, timeout=0.05)
            writer.close()
        finally:
            ring.close()

    def test_cross_process(self):
        ring = ShmRing.create(capacity=4096)
        try:
            proc = multiprocessing.Process(
                target=_shm_child, args=(ring.child_handle(),)
            )
            proc.start()
            parser = FrameParser()
            frames = []
            while len(frames) < 2:
                frames += parser.feed(ring.read())
            proc.join(timeout=10)
            assert proc.exitcode == 0
            assert frames == [(1, b"first"), (2, b"s" * 600)]
        finally:
            ring.close()


def _shm_child(handle):
    ring = open_child_ring(handle)
    ring.write(pack_frame(1, b"first"))
    ring.write(pack_frame(2, b"s" * 600))
    ring.close()


class TestPipeRing:
    def test_round_trip_same_process(self):
        ring = PipeRing()
        writer = open_child_ring(ring.child_handle())
        writer.write(b"chunk one")
        writer.write(b"chunk two")
        assert ring.read() == b"chunk onechunk two"
        ring.close()

    def test_cross_process(self):
        ring = PipeRing()
        proc = multiprocessing.Process(
            target=_pipe_child, args=(ring.child_handle(),)
        )
        proc.start()
        ring.close_writer()
        parser = FrameParser()
        frames = []
        while len(frames) < 1:
            frames += parser.feed(ring.read())
        proc.join(timeout=10)
        assert frames == [(3, b"pipe payload")]
        ring.close()


def _pipe_child(handle):
    ring = open_child_ring(handle)
    ring.write(pack_frame(3, b"pipe payload"))


class TestCreateRing:
    def test_kinds(self):
        assert isinstance(create_ring("pipe"), PipeRing)
        assert isinstance(create_ring("memory"), MemoryRing)
        if shared_memory_available():
            ring = create_ring("shm")
            assert isinstance(ring, ShmRing)
            ring.close()
            auto = create_ring("auto")
            assert isinstance(auto, ShmRing)
            auto.close()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            create_ring("carrier-pigeon")
