"""Regression guard: a streaming shard's result payload stays small.

The whole point of ``--drop-captures`` streaming plus the compact
codec is that what crosses the process boundary (and lands in shard
checkpoints) is accumulator state, not packets — a few KB regardless
of probe count. This pins that property to a fixed byte budget so a
field quietly added to :class:`TableAggregate` or
:class:`ShardOutcome` that drags O(probes) state back onto the wire
fails loudly here instead of silently fattening every ring frame and
checkpoint.

The budget (``OUTCOME_BUDGET_BYTES``, 64 KiB) is deliberately loose —
typical compact frames are under 1 KiB — because the failure mode it
guards against is asymptotic (per-probe state), not constant bloat:
doubling the probe count must not move the payload size.
"""

import dataclasses
import pickle

from repro.core import CampaignConfig
from repro.core.shard import ShardTask, run_shard
from repro.stream.codec import OUTCOME_BUDGET_BYTES, encode_outcome

STREAM_CONFIG = CampaignConfig(
    year=2018, seed=3, mode="stream", drop_captures=True, workers=2
)


def _outcome(scale):
    config = dataclasses.replace(STREAM_CONFIG, scale=scale)
    return run_shard(ShardTask(config=config, index=0, workers=2))


def test_compact_encoding_fits_budget():
    outcome = _outcome(scale=65536)
    blob = encode_outcome(outcome)
    assert blob is not None
    assert len(blob) < OUTCOME_BUDGET_BYTES


def test_pickled_outcome_fits_budget():
    # The pool engine pickles the same outcome; the budget holds for
    # that wire format too, so both engines stay checkpoint-cheap.
    outcome = _outcome(scale=65536)
    payload = pickle.dumps(outcome, protocol=pickle.HIGHEST_PROTOCOL)
    assert len(payload) < OUTCOME_BUDGET_BYTES


def test_payload_is_flat_in_probe_count():
    # 4x the probes must not move the payload materially: the compact
    # state is keyed by distinct destinations, not probes. Allow 2x
    # slack for genuinely destination-shaped growth.
    small = encode_outcome(_outcome(scale=65536))
    large = encode_outcome(_outcome(scale=16384))
    assert len(large) < 2 * len(small)
