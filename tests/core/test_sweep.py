"""Seed-sweep reproducibility tests."""

import pytest

from repro.core.sweep import MetricStats, run_seed_sweep


class TestMetricStats:
    def test_math(self):
        stats = MetricStats("x", (2.0, 4.0, 6.0))
        assert stats.mean == 4.0
        assert stats.stddev == pytest.approx(1.632993, rel=1e-5)
        assert stats.cv == pytest.approx(stats.stddev / 4.0)

    def test_zero_mean(self):
        assert MetricStats("x", (0.0, 0.0)).cv == 0.0


class TestSeedSweep:
    @pytest.fixture(scope="class")
    def sweep(self):
        return run_seed_sweep(
            year=2018, scale=16384, seeds=(1, 2, 3), time_compression=8.0
        )

    def test_tracks_all_seeds(self, sweep):
        assert sweep.seeds == (1, 2, 3)
        for stats in sweep.metrics.values():
            assert len(stats.values) == 3

    def test_totals_stable_across_seeds(self, sweep):
        # Cell counts are apportioned identically per seed; only the
        # host placement and destination draws vary.
        assert sweep.metric("r2_total").cv < 0.01
        assert sweep.metric("open_resolvers").cv < 0.01

    def test_scale_free_metrics_tight(self, sweep):
        assert sweep.metric("err_percent").cv < 0.25
        assert sweep.metric("q2_share").cv < 0.05

    def test_summary_renders(self, sweep):
        text = sweep.summary()
        assert "Seed sweep" in text
        assert "open_resolvers" in text
        assert "CV" in text

    def test_requires_seeds(self):
        with pytest.raises(ValueError):
            run_seed_sweep(seeds=())
