"""End-to-end campaign tests.

These run the full pipeline — population, scan, flow join, analysis —
at a coarse scale and check measured tables against the calibrated
expectations (scaled), i.e. against the paper's shape. The campaign
fixtures (``result_2018``, ``both_years``) are session-scoped in
``tests/conftest.py`` and shared with the golden-table pins.
"""

import pytest

from repro.core import Campaign, CampaignConfig, run_both_years
from repro.resolvers.apportion import scale_count
from tests.conftest import E2E_SCALE as SCALE


class TestCampaign2018(object):
    def test_q1_matches_scaled_probe_space(self, result_2018):
        expected = scale_count(3_702_258_432, SCALE)
        assert result_2018.probe_summary.q1 == expected

    def test_every_deployed_host_responded(self, result_2018):
        assert result_2018.flow_set.r2_count == result_2018.population.host_count

    def test_r2_share_matches_paper(self, result_2018):
        # Paper: R2 is 0.1757% of Q1 in 2018.
        assert result_2018.probe_summary.r2_share == pytest.approx(0.1757, abs=0.01)

    def test_q2_share_matches_paper(self, result_2018):
        # Paper: Q2/R1 is 0.3525% of Q1 in 2018.
        assert result_2018.probe_summary.q2_share == pytest.approx(0.3525, abs=0.03)

    def test_correctness_table_shape(self, result_2018):
        table = result_2018.correctness
        expected = result_2018.profile.expected_correctness()
        # The scaled counts track the calibrated shares.
        assert table.without_answer == pytest.approx(
            expected.without_answer / SCALE, rel=0.05
        )
        assert table.correct == pytest.approx(expected.correct / SCALE, rel=0.05)
        # Err% is scale-free and should be close to the paper's 3.879.
        assert table.err == pytest.approx(expected.err, rel=0.5)

    def test_ra_error_asymmetry(self, result_2018):
        # Paper's key RA finding: Err(RA0) >> Err(RA1).
        ra = result_2018.ra_table
        assert ra.zero.err > 50.0
        assert ra.one.err < 10.0

    def test_aa_error_asymmetry(self, result_2018):
        # Paper: AA1 answers are wrong ~79% of the time; AA0 under 1%.
        aa = result_2018.aa_table
        assert aa.one.err > 40.0
        assert aa.zero.err < 5.0

    def test_refused_dominates_rcodes_without_answer(self, result_2018):
        from repro.dnslib.constants import Rcode

        table = result_2018.rcode_table
        without = table.without_answer
        assert without[Rcode.REFUSED] == max(without.values())

    def test_open_resolver_estimate_ordering(self, result_2018):
        est = result_2018.estimates
        # Section IV-B1: RA-flag-only >= correct-any >= RA-and-correct.
        assert est.ra_flag_only >= est.ra_and_correct
        assert est.correct_any_flag >= est.ra_and_correct

    def test_extrapolated_open_resolvers_about_3m(self, result_2018):
        full = result_2018.estimates.ra_flag_only * SCALE
        assert 2_500_000 < full < 3_500_000

    def test_malicious_flags_lean_ra0_aa1(self, result_2018):
        flags = result_2018.malicious_flags
        if flags.total >= 5:
            # Table X: malicious responses mostly RA=0 and AA=1.
            assert flags.ra0 >= flags.ra1
            assert flags.aa1 >= flags.aa0

    def test_malicious_mostly_us(self, result_2018):
        countries = result_2018.country_distribution
        if countries:
            assert max(countries, key=countries.get) == "US"

    def test_report_renders_all_tables(self, result_2018):
        report = result_2018.report()
        for marker in (
            "Table II", "Table III", "Table IV", "Table V", "Table VI",
            "Table VII", "Table VIII", "Table IX", "Table X",
            "dns_question", "Malicious resolver countries",
        ):
            assert marker in report

    def test_summary_mentions_key_numbers(self, result_2018):
        text = result_2018.summary()
        assert "open resolvers" in text
        assert "malicious" in text

    def test_determinism(self):
        first = Campaign(CampaignConfig(year=2018, scale=65536, seed=3)).run()
        second = Campaign(CampaignConfig(year=2018, scale=65536, seed=3)).run()
        assert first.correctness == second.correctness
        assert first.probe_summary == second.probe_summary

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(scale=0)
        with pytest.raises(ValueError):
            CampaignConfig(time_compression=0)


class TestTemporalComparison(object):
    def test_open_resolvers_declined_about_4x(self, both_years):
        _, _, comparison = both_years
        assert comparison.open_resolvers_declined
        assert 0.15 < comparison.open_resolver_ratio < 0.35  # paper: ~0.24

    def test_incorrect_stayed_flat(self, both_years):
        _, _, comparison = both_years
        assert comparison.incorrect_stayed_flat

    def test_malicious_increased(self, both_years):
        _, _, comparison = both_years
        assert comparison.malicious_increased
        # Paper: malicious R2 roughly doubled (12,874 -> 26,926).
        assert comparison.malicious_r2_ratio > 1.4

    def test_2013_larger_population(self, both_years):
        result_2013, result_2018, _ = both_years
        assert result_2013.flow_set.r2_count > 2 * result_2018.flow_set.r2_count

    def test_2013_has_malformed_answers(self, both_years):
        result_2013, _, _ = both_years
        na_r2, _ = result_2013.incorrect_forms.counts["na"]
        assert na_r2 > 0

    def test_2013_duration_near_seven_days(self, both_years):
        result_2013, _, _ = both_years
        assert 6 * 86400 < result_2013.probe_summary.duration_seconds < 9 * 86400

    def test_headline_text(self, both_years):
        _, _, comparison = both_years
        text = comparison.headline()
        assert "Open resolvers" in text
        assert "Malicious" in text
