"""Unit tests for the shared-nothing multicore campaign engine.

Campaign-level byte identity across engines lives in
``tests/conformance/test_engines.py``; this file covers the engine's
own machinery — scalar-only work distribution, frame handling, fault
paths, engine stats, and the pool engine's newly-loud executor
fallback.
"""

import dataclasses
import pickle
import warnings

import pytest

from repro.core import Campaign, CampaignConfig
from repro.core.multicore import (
    _config_from_wire,
    _config_to_wire,
    run_multicore,
)
from repro.core.shard import (
    CHAOS_EXIT_ENV,
    CHAOS_RAISE_ENV,
    ShardOutcome,
    _run_tasks,
    run_sharded,
)

SCALE = 65536

BASE = CampaignConfig(year=2018, scale=SCALE, seed=3, workers=2)


def _config(**overrides):
    return dataclasses.replace(BASE, **overrides)


class TestWireConfig:
    def test_round_trips_every_field(self):
        config = _config(
            mode="stream", drop_captures=True, fault_profile="bursty",
            engine="multicore", time_compression=4.0,
        )
        assert _config_from_wire(_config_to_wire(config)) == config

    def test_wire_is_scalars_only(self):
        # The shared-nothing contract: nothing object-shaped crosses
        # the boundary, so the wire tuple must pickle to a few hundred
        # bytes no matter the campaign size.
        wire = _config_to_wire(_config(scale=1024))
        assert len(pickle.dumps(wire)) < 1024


class TestEngineStats:
    def test_process_engine_reports_transport_and_work(self):
        result = run_multicore(_config(), parallelism="process")
        stats = result.engine_stats
        assert stats["engine"] == "multicore"
        assert stats["transport"] in ("shm", "pipe")
        assert stats["workers"] == 2
        assert stats["rounds"] == 1
        assert stats["frames"] == 2
        assert stats["bytes_shipped"] > 0
        assert sorted(stats["worker_q1"]) == [0, 1]
        assert all(q1 > 0 for q1 in stats["worker_q1"].values())
        assert all(
            busy >= 0 for busy in stats["worker_busy_s"].values()
        )

    def test_compact_frames_used_for_streaming(self):
        result = run_multicore(
            _config(mode="stream", drop_captures=True),
            parallelism="process",
        )
        assert result.engine_stats["compact_frames"] == 2
        assert result.engine_stats["pickle_frames"] == 0

    def test_pickle_frames_used_for_batch(self):
        result = run_multicore(_config(), parallelism="inline")
        assert result.engine_stats["pickle_frames"] == 2
        assert result.engine_stats["compact_frames"] == 0

    def test_compact_frames_are_smaller(self):
        fat = run_multicore(_config(), parallelism="inline")
        slim = run_multicore(
            _config(mode="stream", drop_captures=True),
            parallelism="inline",
        )
        assert (
            slim.engine_stats["bytes_shipped"]
            < fat.engine_stats["bytes_shipped"] / 4
        )


class TestValidation:
    def test_rejects_unknown_parallelism(self):
        with pytest.raises(ValueError):
            run_multicore(_config(), parallelism="threads")

    def test_rejects_unknown_ring(self):
        with pytest.raises(ValueError):
            run_multicore(_config(), ring="floppy")

    def test_rejects_bad_event_batch(self):
        with pytest.raises(ValueError):
            run_multicore(_config(), event_batch=0)

    def test_config_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            CampaignConfig(year=2018, scale=SCALE, seed=3, engine="gpu")


class TestFaultPaths:
    def test_crashing_worker_degrades_after_retries(self, monkeypatch):
        monkeypatch.setenv(CHAOS_RAISE_ENV, "1:99")
        result = run_multicore(
            _config(max_shard_retries=1), parallelism="process"
        )
        assert result.degraded is not None
        assert [
            record.index for record in result.degraded.failed_shards
        ] == [1]

    def test_killed_worker_is_requeued_and_recovers(self, monkeypatch):
        monkeypatch.setenv(CHAOS_EXIT_ENV, "1:1")
        result = run_multicore(
            _config(max_shard_retries=2), parallelism="process"
        )
        assert result.degraded is None
        assert result.engine_stats["rounds"] == 2
        reference = Campaign(_config(workers=1)).run()
        assert result.report() == reference.report()

    def test_inline_crash_degrades(self, monkeypatch):
        monkeypatch.setenv(CHAOS_RAISE_ENV, "0:99")
        result = run_multicore(
            _config(max_shard_retries=0), parallelism="inline"
        )
        assert result.degraded is not None


class TestCampaignDispatch:
    def test_engine_field_routes_to_multicore(self):
        result = Campaign(_config(engine="multicore")).run()
        assert result.engine_stats is not None
        assert result.engine_stats["engine"] == "multicore"

    def test_pool_engine_has_no_engine_stats(self):
        result = Campaign(_config()).run()
        assert result.engine_stats is None


class TestPoolFallbackIsLoud:
    """The executor fallback used to be silent: a sandboxed host (no
    semaphores) would quietly run an N-worker round serially. It must
    now warn once and count on ``campaign.pool_fallbacks``."""

    def _tasks(self):
        from repro.core.shard import ShardTask

        config = _config()
        return [
            ShardTask(config=config, index=index, workers=2)
            for index in range(2)
        ]

    def test_broken_executor_warns_and_counts(self, monkeypatch):
        import concurrent.futures

        from repro.telemetry.hub import TelemetryConfig, as_hub

        def _no_semaphores(*args, **kwargs):
            raise OSError("semaphores unavailable")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _no_semaphores
        )
        hub = as_hub(TelemetryConfig())
        with pytest.warns(RuntimeWarning, match="shard round running inline"):
            results = _run_tasks(self._tasks(), "auto", hub)
        assert len(results) == 2
        assert all(
            isinstance(outcome, ShardOutcome) for _, outcome in results
        )
        counters = hub.snapshot().metrics.counters
        assert counters.get("campaign.pool_fallbacks") == 1

    def test_forced_process_parallelism_still_raises(self, monkeypatch):
        import concurrent.futures

        def _no_semaphores(*args, **kwargs):
            raise OSError("semaphores unavailable")

        monkeypatch.setattr(
            concurrent.futures, "ProcessPoolExecutor", _no_semaphores
        )
        with pytest.raises(OSError):
            _run_tasks(self._tasks(), "process", None)

    def test_healthy_pool_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            results = _run_tasks(self._tasks(), "auto", None)
        assert all(
            isinstance(outcome, ShardOutcome) for _, outcome in results
        )
