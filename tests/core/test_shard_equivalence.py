"""Sharded-vs-serial equivalence: the shard engine's core guarantee.

For a fixed (seed, scale, year) and zero packet loss, the sharded
campaign must render every table of the report byte-identically to the
serial campaign, for any worker count, whether the shards run in
worker processes or in-process.
"""

import dataclasses

import pytest

from repro.core import Campaign, CampaignConfig
from repro.core.shard import (
    ShardTask,
    cluster_namespace_slice,
    run_sharded,
    shard_universe,
)
from repro.netsim.seeds import derive_seed

#: Coarse enough that one campaign runs in well under a second.
SCALE = 65536

CONFIG_2018 = CampaignConfig(year=2018, scale=SCALE, seed=3)
#: 64x is the CLI's default compression for 2013. At that pace the scan
#: reuses subdomains from long-superseded clusters, which is exactly the
#: regime where the auth server evicting old cluster zones once broke
#: equivalence (a reused qname NXDOMAINed or resolved depending on
#: install timing, which differs per worker count).
CONFIG_2013 = CampaignConfig(
    year=2013, scale=SCALE, seed=7, time_compression=64.0
)


@pytest.fixture(scope="module")
def serial_2018():
    return Campaign(CONFIG_2018).run()


@pytest.fixture(scope="module")
def serial_2013():
    return Campaign(CONFIG_2013).run()


class TestRenderedTableEquivalence(object):
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_2018_reports_byte_identical(self, serial_2018, workers):
        sharded = run_sharded(
            dataclasses.replace(CONFIG_2018, workers=workers),
            parallelism="inline",
        )
        assert sharded.report() == serial_2018.report()

    @pytest.mark.parametrize("workers", [2, 3])
    def test_2013_reports_byte_identical(self, serial_2013, workers):
        sharded = run_sharded(
            dataclasses.replace(CONFIG_2013, workers=workers),
            parallelism="inline",
        )
        assert sharded.report() == serial_2013.report()

    def test_process_pool_path_byte_identical(self, serial_2018):
        # Force real worker processes: the fallback must not mask a
        # pool that cannot ship shard work across the boundary.
        sharded = run_sharded(
            dataclasses.replace(CONFIG_2018, workers=4),
            parallelism="process",
        )
        assert sharded.report() == serial_2018.report()

    def test_campaign_run_workers_override(self, serial_2018):
        sharded = Campaign(CONFIG_2018).run(workers=2)
        assert sharded.report() == serial_2018.report()

    def test_campaign_run_honors_config_workers(self, serial_2018):
        config = dataclasses.replace(CONFIG_2018, workers=2)
        sharded = Campaign(config).run()
        assert sharded.report() == serial_2018.report()


class TestMergedArtifacts(object):
    def test_counts_match_serial(self, serial_2018):
        sharded = run_sharded(
            dataclasses.replace(CONFIG_2018, workers=4), parallelism="inline"
        )
        assert sharded.capture.q1_sent == serial_2018.capture.q1_sent
        assert sharded.capture.q1_bytes == serial_2018.capture.q1_bytes
        assert sharded.capture.r2_count == serial_2018.capture.r2_count
        assert sharded.flow_set.q2_count == serial_2018.flow_set.q2_count
        assert len(sharded.query_log) == len(serial_2018.query_log)

    def test_sharded_result_supports_followups(self):
        # The merged result carries a live deployed world, so the
        # fingerprint follow-up scan works exactly as on a serial run.
        from repro.fingerprint import VersionScanner

        sharded = run_sharded(
            dataclasses.replace(CONFIG_2018, workers=2), parallelism="inline"
        )
        targets = sorted(sharded.population.address_set())
        scan = VersionScanner(sharded.network).scan(targets)
        assert scan.responded > 0


class TestShardPrimitives(object):
    def test_shards_partition_the_universe(self):
        universe = list(range(103))
        shards = [shard_universe(universe, i, 4) for i in range(4)]
        merged = sorted(address for shard in shards for address in shard)
        assert merged == universe

    def test_namespace_slices_disjoint(self):
        slices = [cluster_namespace_slice(i, 4) for i in range(4)]
        for (a_low, a_high), (b_low, b_high) in zip(slices, slices[1:]):
            assert a_low < a_high <= b_low < b_high

    def test_too_many_workers_rejected(self):
        with pytest.raises(ValueError):
            cluster_namespace_slice(0, 10_000)

    def test_derived_seeds_distinct_and_stable(self):
        seeds = {derive_seed(3, i, 8) for i in range(8)}
        assert len(seeds) == 8
        assert derive_seed(3, 0, 8) == derive_seed(3, 0, 8)
        assert derive_seed(3, 0, 8) != derive_seed(4, 0, 8)

    def test_shard_task_validation(self):
        with pytest.raises(ValueError):
            ShardTask(config=CONFIG_2018, index=2, workers=2)
        with pytest.raises(ValueError):
            ShardTask(config=CONFIG_2018, index=-1, workers=2)

    def test_workers_config_validation(self):
        with pytest.raises(ValueError):
            CampaignConfig(workers=0)

    def test_unknown_parallelism_rejected(self):
        with pytest.raises(ValueError):
            run_sharded(CONFIG_2018, parallelism="threads")
