"""Smoke tests for the example scripts.

Each example must import cleanly (no stale APIs) and expose ``main``.
Execution is covered by the heavier subsystem tests; importability is
what rots silently.
"""

import importlib.util
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def load(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        assert len(EXAMPLES) >= 10

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_imports_and_has_main(self, path):
        module = load(path)
        assert callable(getattr(module, "main", None)), path.name

    @pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
    def test_has_usage_docstring(self, path):
        module = load(path)
        assert module.__doc__, path.name
        assert "Usage" in module.__doc__ or "usage" in module.__doc__, path.name
