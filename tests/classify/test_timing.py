"""Timing-based classification tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.classify.timing import (
    FAST,
    SLOW,
    TimingClassifier,
    two_means_threshold,
)
from repro.dnslib.constants import Rcode
from repro.dnssrv.hierarchy import build_hierarchy
from repro.netsim.latency import FixedLatency
from repro.netsim.network import Network
from repro.resolvers.behavior import AnswerKind, BehaviorSpec, ResponseMode
from repro.resolvers.host import BehaviorHost


class TestTwoMeansThreshold:
    def test_clean_bimodal_split(self):
        values = [1.0, 1.1, 0.9, 5.0, 5.2, 4.8]
        threshold = two_means_threshold(values)
        assert 1.1 < threshold < 4.8

    def test_empty_and_singleton(self):
        assert two_means_threshold([]) == 0.0
        assert two_means_threshold([3.0]) == 3.0

    @given(st.lists(st.floats(0.001, 10.0), min_size=2, max_size=50))
    def test_threshold_within_range(self, values):
        threshold = two_means_threshold(values)
        assert min(values) <= threshold <= max(values)

    @given(
        st.lists(st.floats(0.9, 1.1), min_size=3, max_size=20),
        st.lists(st.floats(4.9, 5.1), min_size=3, max_size=20),
    )
    def test_separates_well_separated_clusters(self, low, high):
        threshold = two_means_threshold(low + high)
        assert all(value <= threshold for value in low)
        assert all(value > threshold for value in high)


class TestTimingClassifier:
    def build_world(self, fabricators=6, resolvers=6):
        # Fixed latency makes the two populations perfectly bimodal:
        # fabricators answer in 2 hops, resolvers in 4.
        network = Network(seed=1, latency=FixedLatency(0.05))
        hierarchy = build_hierarchy(network)
        targets, truth = [], {}
        for index in range(fabricators):
            ip = f"203.70.0.{index + 1}"
            spec = BehaviorSpec(
                name="fab", mode=ResponseMode.FABRICATE, ra=True, aa=True,
                answer_kind=AnswerKind.INCORRECT_IP,
                fixed_answer="208.91.197.91",
            )
            BehaviorHost(ip, spec, hierarchy.auth.ip).attach(network)
            targets.append(ip)
            truth[ip] = FAST
        for index in range(resolvers):
            ip = f"203.70.1.{index + 1}"
            spec = BehaviorSpec(
                name="std", mode=ResponseMode.RESOLVE, ra=True, aa=False,
                answer_kind=AnswerKind.CORRECT,
            )
            BehaviorHost(ip, spec, hierarchy.auth.ip).attach(network)
            targets.append(ip)
            truth[ip] = SLOW
        return network, hierarchy, targets, truth

    def test_perfect_separation_under_fixed_latency(self):
        network, hierarchy, targets, truth = self.build_world()
        result = TimingClassifier(network, hierarchy).classify(targets)
        assert result.labels == truth
        assert result.count(FAST) == 6
        assert result.count(SLOW) == 6

    def test_rtt_magnitudes(self):
        network, hierarchy, targets, truth = self.build_world()
        result = TimingClassifier(network, hierarchy).classify(targets)
        for target, rtt in result.rtts.items():
            if truth[target] == FAST:
                assert rtt == pytest.approx(0.10, abs=0.01)   # 2 hops
            else:
                assert rtt == pytest.approx(0.20, abs=0.01)   # 4 hops

    def test_agrees_with_dual_capture(self):
        """Timing labels match the ground-truth dual-capture classes."""
        from repro.classify import ResolverClassifier, ResolverClass

        network, hierarchy, targets, truth = self.build_world(5, 5)
        timing = TimingClassifier(network, hierarchy).classify(targets)
        dual = ResolverClassifier(
            network, hierarchy, scanner_ip="132.170.3.24", source_port=31701,
            probe_prefix="dualx",
        ).classify(targets)
        for target in targets:
            dual_class = dual.classes[target]
            if dual_class is ResolverClass.FABRICATOR:
                assert timing.labels[target] == FAST
            elif dual_class is ResolverClass.RECURSIVE:
                assert timing.labels[target] == SLOW
