"""Classifier accuracy on planted mixes, transparent forwarders included.

Every world here is built with a known ground-truth composition; under
``NoLoss`` (the default lossless network) the classifier must recover
the planted counts *exactly* — the confusion matrix is diagonal. The
matrix helper doubles as the failure diagnostic: when a class leaks,
the off-diagonal cell names both the truth and the mistake.
"""

import pytest

from repro.classify import (
    ResolverClass,
    ResolverClassifier,
    build_classification_world,
    render_classification,
)

#: Address block -> planted class, mirroring build_classification_world.
_BLOCK_TRUTH = {
    "203.20.": ResolverClass.RECURSIVE,
    "203.30.": ResolverClass.PROXY,
    "203.40.": ResolverClass.FABRICATOR,
    "203.50.": ResolverClass.TRANSPARENT_FORWARDER,
}


def ground_truth(target: str) -> ResolverClass:
    for prefix, cls in _BLOCK_TRUTH.items():
        if target.startswith(prefix):
            return cls
    raise AssertionError(f"target outside planted blocks: {target}")


def confusion_matrix(report) -> dict[tuple[ResolverClass, ResolverClass], int]:
    """(truth, predicted) -> count, from the planted address blocks."""
    matrix: dict[tuple[ResolverClass, ResolverClass], int] = {}
    for target, predicted in report.classes.items():
        key = (ground_truth(target), predicted)
        matrix[key] = matrix.get(key, 0) + 1
    return matrix


def off_diagonal(matrix) -> dict[tuple[ResolverClass, ResolverClass], int]:
    return {
        key: count for key, count in matrix.items()
        if key[0] is not key[1]
    }


@pytest.fixture(scope="module")
def mixed_world():
    network, hierarchy, targets = build_classification_world(
        recursives=8, proxies=20, fabricators=4, shared_upstreams=3,
        transparent=6, seed=5,
    )
    report = ResolverClassifier(network, hierarchy).classify(targets)
    return targets, report


class TestExactRecovery:
    def test_confusion_matrix_is_diagonal(self, mixed_world):
        _, report = mixed_world
        assert off_diagonal(confusion_matrix(report)) == {}

    def test_planted_counts_recovered_exactly(self, mixed_world):
        _, report = mixed_world
        assert report.count(ResolverClass.RECURSIVE) == 8
        assert report.count(ResolverClass.PROXY) == 20
        assert report.count(ResolverClass.FABRICATOR) == 4
        assert report.count(ResolverClass.TRANSPARENT_FORWARDER) == 6
        assert report.count(ResolverClass.UNRESPONSIVE) == 0

    @pytest.mark.parametrize("seed", [0, 1, 9])
    def test_recovery_is_seed_independent(self, seed):
        network, hierarchy, targets = build_classification_world(
            recursives=3, proxies=5, fabricators=2, shared_upstreams=2,
            transparent=4, seed=seed,
        )
        report = ResolverClassifier(network, hierarchy).classify(targets)
        assert off_diagonal(confusion_matrix(report)) == {}

    def test_transparent_only_world(self):
        network, hierarchy, targets = build_classification_world(
            recursives=0, proxies=0, fabricators=0, shared_upstreams=2,
            transparent=5, seed=3,
        )
        report = ResolverClassifier(network, hierarchy).classify(targets)
        assert report.count(ResolverClass.TRANSPARENT_FORWARDER) == 5
        assert len(report.classes) == 5


class TestTransparentSignature:
    def test_answer_arrives_off_path(self, mixed_world):
        # The defining evidence: the recorded answering address is a
        # shared upstream, never the probed forwarder itself.
        _, report = mixed_world
        for target, upstream in report.transparent_upstreams.items():
            assert report.classes[target] is (
                ResolverClass.TRANSPARENT_FORWARDER
            )
            assert upstream != target
            assert upstream.startswith("203.10.")

    def test_every_transparent_target_has_an_upstream(self, mixed_world):
        _, report = mixed_world
        transparent = {
            target for target, cls in report.classes.items()
            if cls is ResolverClass.TRANSPARENT_FORWARDER
        }
        assert set(report.transparent_upstreams) == transparent

    def test_fan_in_bookkeeping(self, mixed_world):
        # 6 forwarders round-robined over 3 upstreams: 2/2/2.
        _, report = mixed_world
        assert sorted(report.transparent_fan_in.values()) == [2, 2, 2]
        assert sum(report.transparent_fan_in.values()) == 6

    def test_proxies_not_reclassified(self, mixed_world):
        # A forwarding proxy answers on-path from its own address; only
        # its Q2 exposes the upstream. It must stay PROXY even though
        # it shares upstreams with the transparent forwarders.
        _, report = mixed_world
        assert set(report.proxy_upstreams).isdisjoint(
            report.transparent_upstreams
        )
        assert len(report.proxy_upstreams) == 20


class TestRendering:
    def test_render_includes_transparent_fan_in(self, mixed_world):
        _, report = mixed_world
        text = render_classification(report)
        assert "transparent forwarder" in text
        assert "transparent fan-in (upstream <- forwarders):" in text
        assert "<- 2 forwarders" in text

    def test_render_omits_empty_fan_in(self):
        network, hierarchy, targets = build_classification_world(
            recursives=2, proxies=2, fabricators=0, shared_upstreams=1,
            transparent=0, seed=4,
        )
        report = ResolverClassifier(network, hierarchy).classify(targets)
        assert "transparent fan-in" not in render_classification(report)
