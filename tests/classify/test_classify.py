"""Recursive-vs-proxy classification tests."""

import pytest

from repro.classify import (
    ResolverClass,
    ResolverClassifier,
    build_classification_world,
    render_classification,
)


@pytest.fixture(scope="module")
def world():
    network, hierarchy, targets = build_classification_world(
        recursives=8, proxies=20, fabricators=4, shared_upstreams=3, seed=1
    )
    classifier = ResolverClassifier(network, hierarchy)
    report = classifier.classify(targets)
    return network, hierarchy, targets, report


class TestClassification:
    def test_counts_match_deployment(self, world):
        _, _, _, report = world
        assert report.count(ResolverClass.RECURSIVE) == 8
        assert report.count(ResolverClass.PROXY) == 20
        assert report.count(ResolverClass.FABRICATOR) == 4
        assert report.count(ResolverClass.UNRESPONSIVE) == 0

    def test_recursives_identified_by_source_match(self, world):
        _, _, _, report = world
        for ip, cls in report.classes.items():
            if cls is ResolverClass.RECURSIVE:
                assert ip.startswith("203.20.")

    def test_proxies_expose_their_upstreams(self, world):
        _, _, _, report = world
        assert set(report.proxy_upstreams) == {
            ip for ip, cls in report.classes.items()
            if cls is ResolverClass.PROXY
        }
        for upstream in report.proxy_upstreams.values():
            assert upstream.startswith("203.10.")

    def test_fan_in_structure(self, world):
        # 20 proxies over 3 shared upstreams: 7/7/6.
        _, _, _, report = world
        fan_in = sorted(report.upstream_fan_in.values(), reverse=True)
        assert sum(fan_in) == 20
        assert fan_in == [7, 7, 6]

    def test_shares(self, world):
        _, _, _, report = world
        assert report.share(ResolverClass.PROXY) == pytest.approx(20 / 32)

    def test_unresponsive_targets(self):
        network, hierarchy, targets = build_classification_world(
            recursives=2, proxies=2, fabricators=0, seed=2
        )
        dead = ["203.99.0.1", "203.99.0.2"]
        classifier = ResolverClassifier(network, hierarchy)
        report = classifier.classify(targets + dead)
        for ip in dead:
            assert report.classes[ip] is ResolverClass.UNRESPONSIVE

    def test_render(self, world):
        _, _, _, report = world
        text = render_classification(report)
        assert "forwarding proxy" in text
        assert "fan-in" in text

    def test_world_validation(self):
        with pytest.raises(ValueError):
            build_classification_world(shared_upstreams=0)
