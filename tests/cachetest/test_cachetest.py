"""Cache-behavior probe tests."""

import pytest

from repro.cachetest import (
    CachePolicy,
    CacheProbeExperiment,
    render_cache_report,
)
from repro.dnssrv.cache import DnsCache


class TestCachePolicyKnobs:
    def test_min_ttl_clamps_up(self):
        from repro.dnslib.constants import QueryType
        from repro.dnslib.records import AData, ResourceRecord

        cache = DnsCache(min_ttl=1000)
        record = ResourceRecord("x.example.com", QueryType.A, ttl=5,
                                data=AData("1.2.3.4"))
        cache.put("x.example.com", QueryType.A, [record], now=0.0)
        # Alive long after the record's own TTL.
        assert cache.get("x.example.com", QueryType.A, now=900.0) is not None

    def test_max_ttl_zero_disables_caching(self):
        from repro.dnslib.constants import QueryType
        from repro.dnslib.records import AData, ResourceRecord

        cache = DnsCache(min_ttl=0, max_ttl=0)
        record = ResourceRecord("x.example.com", QueryType.A, ttl=300,
                                data=AData("1.2.3.4"))
        cache.put("x.example.com", QueryType.A, [record], now=0.0)
        assert len(cache) == 0

    def test_serve_stale(self):
        from repro.dnslib.constants import QueryType
        from repro.dnslib.records import AData, ResourceRecord

        cache = DnsCache(serve_stale=True)
        record = ResourceRecord("x.example.com", QueryType.A, ttl=5,
                                data=AData("1.2.3.4"))
        cache.put("x.example.com", QueryType.A, [record], now=0.0)
        assert cache.get("x.example.com", QueryType.A, now=100.0) is not None
        assert cache.stats.stale_serves == 1

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            DnsCache(min_ttl=-1)
        with pytest.raises(ValueError):
            DnsCache(min_ttl=10, max_ttl=5)


@pytest.fixture(scope="module")
def report():
    return CacheProbeExperiment(
        fleet={
            CachePolicy.COMPLIANT: 6,
            CachePolicy.TTL_EXTENDER: 3,
            CachePolicy.STALE_SERVER: 3,
            CachePolicy.NO_CACHE: 2,
        },
        seed=4,
    ).run()


class TestCacheProbe:
    def test_every_resolver_judged(self, report):
        assert report.total == 14

    def test_compliant_resolvers(self, report):
        for verdict in report.by_policy(CachePolicy.COMPLIANT):
            assert verdict.caches
            assert not verdict.serves_ghost
            assert verdict.fetches == 2  # seed + post-expiry refetch

    def test_ttl_extenders_serve_ghosts(self, report):
        for verdict in report.by_policy(CachePolicy.TTL_EXTENDER):
            assert verdict.caches
            assert verdict.serves_ghost
            assert verdict.fetches == 1  # never refetched

    def test_stale_servers_serve_ghosts(self, report):
        for verdict in report.by_policy(CachePolicy.STALE_SERVER):
            assert verdict.serves_ghost

    def test_no_cache_refetches(self, report):
        for verdict in report.by_policy(CachePolicy.NO_CACHE):
            assert not verdict.caches
            assert not verdict.serves_ghost
            assert verdict.fetches >= 2

    def test_summary_counts(self, report):
        assert report.count_ghost_servers() == 6  # 3 extenders + 3 stale
        assert report.count_caching() >= 9

    def test_render(self, report):
        text = render_cache_report(report)
        assert "ghost" in text
        assert "ttl-extender" in text

    def test_fleet_validation(self):
        with pytest.raises(ValueError):
            CacheProbeExperiment(fleet={})
        with pytest.raises(ValueError):
            CacheProbeExperiment(fleet={CachePolicy.COMPLIANT: -1})
